package absint

import (
	"encoding/json"
	"fmt"
	"io"
	"math/big"

	"github.com/kfrida1/csdinf/internal/lstm"
)

// StageRange is the analyzed interval of one fixed-point intermediate.
//
// Lo and Hi are decimal strings because a refuted design's bounds exceed
// int64 by construction — the very thing the analysis exists to detect.
type StageRange struct {
	// Stage is the stage identifier (see the Stage* constants).
	Stage string `json:"stage"`
	// Kernel is the kernel computing this stage.
	Kernel string `json:"kernel"`
	// Raw marks scale-S² values (dot accumulators, pre-rescale products);
	// unset means the working scale S.
	Raw bool `json:"raw,omitempty"`
	// Lo and Hi bound every value this stage can hold, inclusive.
	Lo string `json:"lo"`
	Hi string `json:"hi"`
	// Bits is the magnitude bit width of the interval's extreme.
	Bits int `json:"bits"`
	// Headroom is 63 − Bits: the spare integer bits before int64 wraps.
	// Negative headroom means the stage provably can overflow.
	Headroom int `json:"headroom"`
	// Overflow reports that the interval (plus the rescale rounding bias on
	// raw stages) escapes int64.
	Overflow bool `json:"overflow,omitempty"`
	// ActInput names the activation this stage feeds (ActSigmoid or
	// ActSoftsign), when it feeds one.
	ActInput string `json:"act_input,omitempty"`
	// DomainViolation reports that the stage can exceed the activation
	// evaluators' internally overflow-free input domain.
	DomainViolation bool `json:"domain_violation,omitempty"`
}

// Report is the result of one analysis run: every datapath stage with its
// proven bounds, plus the quantization-coarseness accounting.
type Report struct {
	Scale  int64       `json:"scale"`
	SeqLen int         `json:"seq_len"`
	Model  lstm.Config `json:"model"`
	// ActDomain is the largest activation-input magnitude the fixed-point
	// evaluators handle without internal overflow, as a decimal string.
	ActDomain string       `json:"act_domain"`
	Stages    []StageRange `json:"stages"`
	// NonzeroWeights counts nonzero float parameters; UnderflowedWeights
	// counts those the scale quantizes to zero (the NUM003 signal).
	NonzeroWeights     int `json:"nonzero_weights"`
	UnderflowedWeights int `json:"underflowed_weights"`
}

// Overflows returns the stages that can escape int64.
func (r *Report) Overflows() []StageRange {
	var out []StageRange
	for _, s := range r.Stages {
		if s.Overflow {
			out = append(out, s)
		}
	}
	return out
}

// DomainViolations returns the activation-input stages that can leave the
// evaluators' safe domain.
func (r *Report) DomainViolations() []StageRange {
	var out []StageRange
	for _, s := range r.Stages {
		if s.DomainViolation {
			out = append(out, s)
		}
	}
	return out
}

// MinHeadroom returns the stage with the least headroom, false when the
// report has no stages.
func (r *Report) MinHeadroom() (StageRange, bool) {
	if len(r.Stages) == 0 {
		return StageRange{}, false
	}
	min := r.Stages[0]
	for _, s := range r.Stages[1:] {
		if s.Headroom < min.Headroom {
			min = s
		}
	}
	return min, true
}

// UnderflowFraction is the fraction of nonzero weights the scale is too
// coarse to represent (0 when the model has no nonzero weights).
func (r *Report) UnderflowFraction() float64 {
	if r.NonzeroWeights == 0 {
		return 0
	}
	return float64(r.UnderflowedWeights) / float64(r.NonzeroWeights)
}

// OverflowFree reports the headline verdict: no stage can overflow int64 and
// no activation input can leave the safe domain.
func (r *Report) OverflowFree() bool {
	for _, s := range r.Stages {
		if s.Overflow || s.DomainViolation {
			return false
		}
	}
	return true
}

// WriteText renders the per-stage range report in the fixed-width layout the
// `csdlint ranges` subcommand prints. The output is deterministic for a given
// report, so tests golden it.
func (r *Report) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("numeric range analysis: scale %d, seqlen %d (vocab %d, embed %d, hidden %d)\n",
		r.Scale, r.SeqLen, r.Model.VocabSize, r.Model.EmbedDim, r.Model.HiddenSize)
	bw.printf("activation-safe input domain: |x| <= %s\n\n", r.ActDomain)
	bw.printf("%-34s %-5s %4s %8s  %s\n", "stage", "scale", "bits", "headroom", "range")
	for _, s := range r.Stages {
		scale := "S"
		if s.Raw {
			scale = "S^2"
		}
		flags := ""
		if s.Overflow {
			flags += "  OVERFLOW"
		}
		if s.DomainViolation {
			flags += "  ACT-DOMAIN"
		}
		act := ""
		if s.ActInput != "" {
			act = " -> " + s.ActInput
		}
		bw.printf("%-34s %-5s %4d %8d  [%s, %s]%s%s\n",
			s.Stage, scale, s.Bits, s.Headroom, s.Lo, s.Hi, act, flags)
	}
	bw.printf("\nweights: %d nonzero, %d below the quantization step (%.2f%%)\n",
		r.NonzeroWeights, r.UnderflowedWeights, 100*r.UnderflowFraction())
	if r.OverflowFree() {
		if min, ok := r.MinHeadroom(); ok {
			bw.printf("verdict: PROVED overflow-free (min headroom %d bits at %s)\n",
				min.Headroom, min.Stage)
		} else {
			bw.printf("verdict: PROVED overflow-free (no stages)\n")
		}
	} else {
		bw.printf("verdict: REFUTED (%d overflow stage(s), %d activation-domain violation(s))\n",
			len(r.Overflows()), len(r.DomainViolations()))
	}
	return bw.err
}

// JSON renders the report as indented JSON, the `csdlint ranges -json`
// artifact payload.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Stage returns the named stage, false when absent.
func (r *Report) Stage(name string) (StageRange, bool) {
	for _, s := range r.Stages {
		if s.Stage == name {
			return s, true
		}
	}
	return StageRange{}, false
}

// Contains reports whether v lies inside the named stage's interval. It is
// the primitive FuzzIntervalSoundness checks concrete observations with; the
// second result is false when the stage is unknown.
func (r *Report) Contains(name string, v int64) (bool, bool) {
	s, ok := r.Stage(name)
	if !ok {
		return false, false
	}
	lo, ok1 := new(big.Int).SetString(s.Lo, 10)
	hi, ok2 := new(big.Int).SetString(s.Hi, 10)
	if !ok1 || !ok2 {
		return false, false
	}
	b := big.NewInt(v)
	return lo.Cmp(b) <= 0 && b.Cmp(hi) <= 0, true
}

// errWriter coalesces write errors across the many printf calls above.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
