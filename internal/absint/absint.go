// Package absint is an interval-domain abstract interpreter over the
// fixed-point LSTM datapath of internal/kernels.
//
// The FPGA kernels execute the classifier entirely in scaled-integer
// arithmetic (internal/fixed): every weight, activation, and accumulator is
// an int64 carrying a scale S, raw dot-product accumulators carry S², and
// nothing checks for overflow at runtime — exactly like the fixed-width
// datapath the HLS flow synthesizes. Whether that is safe depends on the
// trained weights, the scale, and the sequence length. This package answers
// the question statically, the way HLS bitwidth analysis does: it propagates
// [lo, hi] intervals through every stage the kernels execute —
//
//	embedding lookup → per-gate input/hidden dot products → pre-activation
//	sums → PLAN sigmoid / exact softsign → cell-state update (iterated over
//	the sequence length) → output projection
//
// — computing the worst-case magnitude and required integer bits of every
// intermediate, and proving (or refuting) that the computation fits int64.
//
// Soundness. All interval arithmetic is exact (math/big), the quantized
// coefficients are the very int64 values kernels.Pipeline.quantize derives,
// and accumulator bounds are sums of absolute values — so they cover every
// partial sum of a dot product, not just the final total. The PLAN sigmoid's
// output bound is computed from the quantized segment coefficients (at coarse
// scales coefficient rounding can push the output slightly above 1.0; the
// analysis models that, rather than assuming the real-valued [0, 1]). The
// bounds assume no intermediate wraps — which is precisely what the overflow
// and activation-domain checks establish; when the analysis proves a design
// clean, the concrete datapath can never leave the predicted intervals.
// FuzzIntervalSoundness cross-checks this claim against concrete execution
// through the kernels' numeric probe.
//
// The result surfaces as the DRC NUM rule category (internal/drc), the
// `csdlint ranges` report, and the gate ROADMAP item 4's fixed-point width
// sweep deploys behind.
package absint

import (
	"errors"
	"fmt"
	"math/big"

	"github.com/kfrida1/csdinf/internal/fixed"
	"github.com/kfrida1/csdinf/internal/lstm"
)

// Config parameterizes an analysis run. The zero value analyzes the paper's
// deployment: scale 10⁶, sequence length 100.
type Config struct {
	// Scale is the fixed-point scale (default fixed.DefaultScale).
	Scale int64
	// SeqLen is the sequence length consumed per classification (default
	// 100, the paper's window). The cell state accumulates across exactly
	// this many steps before the pipeline resets.
	SeqLen int
}

func (c *Config) defaults() {
	if c.Scale == 0 {
		c.Scale = fixed.DefaultScale
	}
	if c.SeqLen == 0 {
		c.SeqLen = 100
	}
}

// maxScale bounds the analyzable scale: the PLAN sigmoid computes 5·scale for
// its saturation threshold, which must itself fit int64.
const maxScale = int64(^uint64(0)>>1) / 8

var (
	bigMaxInt64 = new(big.Int).SetInt64(int64(^uint64(0) >> 1))
	bigMinInt64 = new(big.Int).Neg(new(big.Int).Add(bigMaxInt64, big.NewInt(1)))
)

// Analyze runs the abstract interpretation of the fixed-point datapath for
// model m under cfg. The returned report always carries every stage (or, if
// quantization itself overflows, the offending quantize stages) — inspect
// OverflowFree for the verdict.
func Analyze(m *lstm.Model, cfg Config) (*Report, error) {
	if m == nil {
		return nil, errors.New("absint: nil model")
	}
	cfg.defaults()
	if cfg.Scale < 1 {
		return nil, fmt.Errorf("absint: scale must be positive, got %d", cfg.Scale)
	}
	if cfg.Scale > maxScale {
		return nil, fmt.Errorf("absint: scale %d exceeds %d (PLAN sigmoid needs 5·scale representable)", cfg.Scale, maxScale)
	}
	if cfg.SeqLen < 1 {
		return nil, fmt.Errorf("absint: seqlen must be positive, got %d", cfg.SeqLen)
	}
	a := analysis{
		arith:  fixed.MustNew(cfg.Scale),
		mcfg:   m.Config(),
		seqLen: cfg.SeqLen,
		rep: &Report{
			Scale:  cfg.Scale,
			SeqLen: cfg.SeqLen,
			Model:  m.Config(),
		},
	}
	a.rep.ActDomain = a.actDomain().String()
	if !a.quantize(m) {
		// Quantization itself overflowed: the report holds the offending
		// quantize/* stages and nothing downstream is meaningful.
		return a.rep, nil
	}
	a.run()
	return a.rep, nil
}

// analysis carries the quantized parameters and accumulating report.
type analysis struct {
	arith  fixed.Arith
	mcfg   lstm.Config
	seqLen int
	rep    *Report

	qEmbed [][]fixed.Value
	qWx    [4][][]fixed.Value
	qWh    [4][][]fixed.Value
	qB     [4][]fixed.Value
	qFCW   []fixed.Value
	qFCB   fixed.Value
}

// quantize mirrors kernels.Pipeline.quantize exactly, but with overflow
// checking, and counts the weights the scale is too coarse to represent
// (nonzero floats that quantize to zero — the NUM003 signal). It reports
// false when any parameter is unrepresentable at this scale.
func (a *analysis) quantize(m *lstm.Model) bool {
	ok := true
	quantSlice := func(name string, fs []float64) []fixed.Value {
		out := make([]fixed.Value, len(fs))
		for i, f := range fs {
			v, err := a.arith.FromFloatChecked(f)
			if err != nil {
				a.quantOverflowStage(name, f)
				ok = false
				continue
			}
			out[i] = v
			if f != 0 {
				a.rep.NonzeroWeights++
				if v == 0 {
					a.rep.UnderflowedWeights++
				}
			}
		}
		return out
	}

	cfg := a.mcfg
	a.qEmbed = make([][]fixed.Value, cfg.VocabSize)
	for i := range a.qEmbed {
		a.qEmbed[i] = quantSlice("embedding", m.Embedding.Row(i))
	}
	for g := range m.Gates {
		slug := GateSlug(lstm.GateName(g + 1))
		a.qWx[g] = make([][]fixed.Value, cfg.HiddenSize)
		a.qWh[g] = make([][]fixed.Value, cfg.HiddenSize)
		for r := 0; r < cfg.HiddenSize; r++ {
			a.qWx[g][r] = quantSlice("gate_"+slug+"/wx", m.Gates[g].Wx.Row(r))
			a.qWh[g][r] = quantSlice("gate_"+slug+"/wh", m.Gates[g].Wh.Row(r))
		}
		a.qB[g] = quantSlice("gate_"+slug+"/b", m.Gates[g].B)
	}
	a.qFCW = quantSlice("fc/w", m.FCW)
	fcb := quantSlice("fc/b", []float64{m.FCB})
	a.qFCB = fcb[0]
	return ok
}

// quantOverflowStage records a parameter the scale cannot represent; it
// dedupes per parameter name so a whole unrepresentable matrix yields one
// stage, not thousands.
func (a *analysis) quantOverflowStage(name string, f float64) {
	stage := "quantize/" + name
	for _, s := range a.rep.Stages {
		if s.Stage == stage {
			return
		}
	}
	// Exact magnitude of the unrepresentable value f·S.
	scaled, _ := new(big.Float).Mul(big.NewFloat(f), new(big.Float).SetInt64(a.arith.Scale())).Int(nil)
	iv := ival{lo: scaled, hi: new(big.Int).Set(scaled)}
	if scaled.Sign() < 0 {
		iv.hi.Neg(iv.hi)
	} else {
		iv.lo = new(big.Int).Neg(scaled)
	}
	a.addStage(stage, iv, false, "")
}

// run performs the interval propagation over the full datapath, appending
// stages to the report in dataflow order.
func (a *analysis) run() {
	S := big.NewInt(a.arith.Scale())

	// kernel_preprocess: the embedding values themselves, plus per-column
	// maximum magnitudes used to bound the input dot products below.
	embedIv := ival{lo: new(big.Int), hi: new(big.Int)}
	colMax := make([]*big.Int, a.mcfg.EmbedDim)
	for o := range colMax {
		colMax[o] = new(big.Int)
	}
	for _, row := range a.qEmbed {
		for o, v := range row {
			b := big.NewInt(v)
			if b.Cmp(embedIv.hi) > 0 {
				embedIv.hi.Set(b)
			}
			if b.Cmp(embedIv.lo) < 0 {
				embedIv.lo.Set(b)
			}
			if b.Abs(b); b.Cmp(colMax[o]) > 0 {
				colMax[o].Set(b)
			}
		}
	}
	a.addStage(StageEmbed, embedIv, false, "")

	// Activation output intervals are model-independent: the exact softsign
	// stays within [-1, 1]; the PLAN sigmoid's bound comes from its
	// quantized segment coefficients (slightly above 1.0 at coarse scales).
	sigIv := a.sigmoidRange()
	ssIv := ival{lo: new(big.Int).Neg(S), hi: new(big.Int).Set(S)}

	// h = o ⊙ softsign(c) — computable before the gate bounds because it
	// depends only on the activation output intervals.
	hiddenRaw := mulI(sigIv, ssIv)
	hiddenIv := a.rescaleI(hiddenRaw)
	hAbs := absMax(hiddenIv)

	// kernel_gates: per gate, the raw input/hidden accumulators, the
	// pre-activation sum, and the activated output.
	for g := 0; g < 4; g++ {
		name := lstm.GateName(g + 1)

		wxB := new(big.Int)
		for _, row := range a.qWx[g] {
			rowSum := new(big.Int)
			t := new(big.Int)
			for o, w := range row {
				rowSum.Add(rowSum, t.Mul(t.SetInt64(w).Abs(t), colMax[o]))
			}
			if rowSum.Cmp(wxB) > 0 {
				wxB.Set(rowSum)
			}
		}
		a.addStage(GateStage(name, StageWxAcc), symI(wxB), true, "")

		whB := new(big.Int)
		for _, row := range a.qWh[g] {
			rowSum := new(big.Int)
			t := new(big.Int)
			for _, w := range row {
				rowSum.Add(rowSum, t.Mul(t.SetInt64(w).Abs(t), hAbs))
			}
			if rowSum.Cmp(whB) > 0 {
				whB.Set(rowSum)
			}
		}
		a.addStage(GateStage(name, StageWhAcc), symI(whB), true, "")

		bMax := new(big.Int)
		for _, b := range a.qB[g] {
			t := big.NewInt(b)
			if t.Abs(t); t.Cmp(bMax) > 0 {
				bMax.Set(t)
			}
		}
		preB := new(big.Int).Add(a.rdiv(wxB), a.rdiv(whB))
		preB.Add(preB, bMax)
		act := ActSigmoid
		if name == lstm.GateCandidate {
			act = ActSoftsign
		}
		a.addStage(GateStage(name, StagePreact), symI(preB), false, act)

		outIv := sigIv
		if name == lstm.GateCandidate {
			outIv = ssIv
		}
		a.addStage(GateStage(name, StageGateOut), outIv, false, "")
	}

	// kernel_hidden_state: the cell state accumulates for SeqLen steps
	// before the counter fires and the pipeline resets, so iterate the
	// update c ← f⊙c + i⊙C' exactly that many times, tracking the union of
	// every intermediate along the way.
	icRaw := mulI(sigIv, ssIv)
	cellIv := ival{lo: new(big.Int), hi: new(big.Int)}
	fcRawU := ival{lo: new(big.Int), hi: new(big.Int)}
	cellU := ival{lo: new(big.Int), hi: new(big.Int)}
	icTerm := a.rescaleI(icRaw)
	for t := 0; t < a.seqLen; t++ {
		fcRaw := mulI(sigIv, cellIv)
		fcRawU = unionI(fcRawU, fcRaw)
		cellIv = addI(a.rescaleI(fcRaw), icTerm)
		cellU = unionI(cellU, cellIv)
	}
	a.addStage(StageCellForgetRaw, fcRawU, true, "")
	a.addStage(StageCellInputRaw, icRaw, true, "")
	a.addStage(StageCellState, cellU, false, ActSoftsign)
	a.addStage(StageCellAct, ssIv, false, "")
	a.addStage(StageHiddenRaw, hiddenRaw, true, "")
	a.addStage(StageHiddenState, hiddenIv, false, "")

	// Fully-connected head.
	fcB := new(big.Int)
	t := new(big.Int)
	for _, w := range a.qFCW {
		fcB.Add(fcB, t.Mul(t.SetInt64(w).Abs(t), hAbs))
	}
	a.addStage(StageFCAcc, symI(fcB), true, "")
	logitIv := addI(a.rescaleI(symI(fcB)), ival{lo: big.NewInt(a.qFCB), hi: big.NewInt(a.qFCB)})
	a.addStage(StageLogit, logitIv, false, "")
}

// sigmoidRange computes the exact output interval of the PLAN sigmoid over
// all representable inputs, using the quantized segment coefficients the
// fixed-point evaluator really multiplies by. Each segment y = c·|x| + d is
// monotone, so its supremum sits at the segment's upper input bound; the
// negative half is 1 - y, so the lower bound is min(0, 1 - ymax).
func (a *analysis) sigmoidRange() ival {
	one := a.arith.One()
	q := a.arith.FromFloat
	type segment struct {
		hi   fixed.Value // largest |x| routed to this segment
		c, d fixed.Value
	}
	segs := []segment{
		// The raw arithmetic below computes exact segment *boundaries* (the
		// largest representable input routed to each segment), not datapath
		// values: maxScale caps the scale at 2⁶⁰ so 5·S cannot wrap.
		{hi: 5*one - 1, c: q(0.03125), d: q(0.84375)}, //csdlint:allow fixedwidth exact segment bound, 5·S ≤ 5·2⁶⁰
		{hi: q(2.375) - 1, c: q(0.125), d: q(0.625)},  //csdlint:allow fixedwidth exact segment bound
		{hi: one - 1, c: q(0.25), d: q(0.5)},          //csdlint:allow fixedwidth exact segment bound
	}
	ymax := big.NewInt(one) // the |x| ≥ 5 plateau
	for _, s := range segs {
		if s.hi < 0 {
			continue
		}
		y := new(big.Int).Mul(big.NewInt(s.c), big.NewInt(s.hi))
		y = a.rdiv(y)
		y.Add(y, big.NewInt(s.d))
		if y.Cmp(ymax) > 0 {
			ymax.Set(y)
		}
	}
	lo := new(big.Int).Sub(big.NewInt(one), ymax)
	if lo.Sign() > 0 {
		lo.SetInt64(0)
	}
	return ival{lo: lo, hi: ymax}
}

// actDomain returns the largest |x| for which the fixed-point activation
// evaluators are internally overflow-free: softsign computes x·S + (|x|+S)/2
// inside its rounded division, so |x| ≤ (MaxInt64 − S) / (S + 1) keeps every
// internal term in range (and covers the PLAN sigmoid's c·|x| products, whose
// coefficients never exceed S).
func (a *analysis) actDomain() *big.Int {
	s := new(big.Int).SetInt64(a.arith.Scale())
	d := new(big.Int).Sub(bigMaxInt64, s)
	return d.Quo(d, new(big.Int).Add(s, big.NewInt(1)))
}

// addStage appends a stage to the report, deriving bit width, headroom, and
// the overflow / activation-domain verdicts. Raw (scale-S²) stages must also
// absorb the half-scale rounding bias the subsequent rescale adds.
func (a *analysis) addStage(name string, iv ival, raw bool, act string) {
	m := absMax(iv)
	bits := m.BitLen()
	margin := new(big.Int)
	if raw {
		margin.SetInt64(a.arith.Scale() / 2)
	}
	overflow := new(big.Int).Add(iv.hi, margin).Cmp(bigMaxInt64) > 0 ||
		new(big.Int).Sub(iv.lo, margin).Cmp(bigMinInt64) < 0
	st := StageRange{
		Stage:    name,
		Kernel:   kernelOf(name),
		Raw:      raw,
		Lo:       iv.lo.String(),
		Hi:       iv.hi.String(),
		Bits:     bits,
		Headroom: 63 - bits,
		Overflow: overflow,
		ActInput: act,
	}
	if act != "" && m.Cmp(a.actDomain()) > 0 {
		st.DomainViolation = true
	}
	a.rep.Stages = append(a.rep.Stages, st)
}

// rdiv is fixed.roundedDiv on a magnitude: (|v| + S/2) / S, exact.
func (a *analysis) rdiv(v *big.Int) *big.Int {
	s := new(big.Int).SetInt64(a.arith.Scale())
	half := new(big.Int).SetInt64(a.arith.Scale() / 2)
	out := new(big.Int).Abs(v)
	out.Add(out, half)
	out.Quo(out, s)
	if v.Sign() < 0 {
		out.Neg(out)
	}
	return out
}

// rescaleI applies the rounded rescale to both interval endpoints; the
// division is monotone, so endpoint images bound the whole image.
func (a *analysis) rescaleI(iv ival) ival {
	return ival{lo: a.rdiv(iv.lo), hi: a.rdiv(iv.hi)}
}

// ival is a closed interval of exact integers.
type ival struct{ lo, hi *big.Int }

// symI returns [-b, b].
func symI(b *big.Int) ival {
	return ival{lo: new(big.Int).Neg(b), hi: new(big.Int).Set(b)}
}

// addI is interval addition.
func addI(x, y ival) ival {
	return ival{lo: new(big.Int).Add(x.lo, y.lo), hi: new(big.Int).Add(x.hi, y.hi)}
}

// mulI is interval multiplication: the extrema of the four endpoint products.
func mulI(x, y ival) ival {
	ps := []*big.Int{
		new(big.Int).Mul(x.lo, y.lo),
		new(big.Int).Mul(x.lo, y.hi),
		new(big.Int).Mul(x.hi, y.lo),
		new(big.Int).Mul(x.hi, y.hi),
	}
	out := ival{lo: ps[0], hi: ps[0]}
	for _, p := range ps[1:] {
		if p.Cmp(out.lo) < 0 {
			out.lo = p
		}
		if p.Cmp(out.hi) > 0 {
			out.hi = p
		}
	}
	return ival{lo: new(big.Int).Set(out.lo), hi: new(big.Int).Set(out.hi)}
}

// unionI is the interval hull of x and y.
func unionI(x, y ival) ival {
	out := ival{lo: new(big.Int).Set(x.lo), hi: new(big.Int).Set(x.hi)}
	if y.lo.Cmp(out.lo) < 0 {
		out.lo.Set(y.lo)
	}
	if y.hi.Cmp(out.hi) > 0 {
		out.hi.Set(y.hi)
	}
	return out
}

// absMax returns max(|lo|, |hi|).
func absMax(iv ival) *big.Int {
	l := new(big.Int).Abs(iv.lo)
	h := new(big.Int).Abs(iv.hi)
	if l.Cmp(h) > 0 {
		return l
	}
	return h
}
