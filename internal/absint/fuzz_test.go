package absint_test

import (
	"math/rand"
	"testing"

	"github.com/kfrida1/csdinf/internal/absint"
	"github.com/kfrida1/csdinf/internal/activation"
	"github.com/kfrida1/csdinf/internal/fixed"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/lstm"
)

// fuzzScales spans fine to deliberately hostile quantizations: the coarse end
// produces plenty of refuted (overflowing) designs, the fine end plenty of
// proven ones, so the fuzzer exercises both sides of the verdict.
var fuzzScales = []int64{64, 4096, fixed.DefaultScale, 1 << 24, 1 << 34, 1 << 44}

// FuzzIntervalSoundness is the soundness oracle for the abstract interpreter:
// whenever Analyze PROVES a model overflow-free at a scale, running the real
// fixed-point pipeline with the numeric probe installed must observe (a) zero
// wrapped operations and (b) every concrete intermediate inside the predicted
// interval of its stage. A counterexample here means the interval transfer
// functions are unsound — the analysis claimed safety the datapath violates.
//
// Models are seeded tiny LSTMs with weights amplified by up to 255×, so the
// accumulator magnitudes sweep from trivially safe to well past int64.
func FuzzIntervalSoundness(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(1), int64(7))
	f.Add(int64(3), uint8(0), uint8(40), int64(11))
	f.Add(int64(5), uint8(5), uint8(200), int64(13))
	f.Add(int64(9), uint8(4), uint8(17), int64(2))
	f.Fuzz(func(t *testing.T, seed int64, scaleIdx, amp uint8, seqSeed int64) {
		scale := fuzzScales[int(scaleIdx)%len(fuzzScales)]
		cfg := lstm.Config{
			VocabSize: 6, EmbedDim: 3, HiddenSize: 4,
			CellActivation: activation.Softsign,
		}
		m, err := lstm.NewModel(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		factor := float64(amp)
		amplify := func(fs []float64) {
			for i := range fs {
				fs[i] *= factor
			}
		}
		amplify(m.Embedding.Data)
		for g := range m.Gates {
			amplify(m.Gates[g].Wx.Data)
			amplify(m.Gates[g].Wh.Data)
			amplify(m.Gates[g].B)
		}
		amplify(m.FCW)
		m.FCB *= factor

		const seqLen = 8
		rep, err := absint.Analyze(m, absint.Config{Scale: scale, SeqLen: seqLen})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OverflowFree() {
			// Refuted designs make no safety claim; nothing to check.
			t.Skip("design refuted at this scale")
		}

		pipe, err := kernels.New(m, kernels.Config{
			Level: kernels.LevelFixedPoint, Scale: scale, SeqLen: seqLen,
		})
		if err != nil {
			t.Fatal(err)
		}
		pipe.SetNumericProbe(func(stage string, v fixed.Value, wrapErr error) {
			if wrapErr != nil {
				t.Errorf("proved-clean design wrapped at %s: %v", stage, wrapErr)
			}
			in, known := rep.Contains(stage, int64(v))
			switch {
			case !known:
				t.Errorf("probe observed stage %s unknown to the report", stage)
			case !in:
				t.Errorf("concrete value %d at %s escapes the predicted interval", v, stage)
			}
		})

		rng := rand.New(rand.NewSource(seqSeed))
		seq := make([]int, seqLen)
		for i := range seq {
			seq[i] = rng.Intn(cfg.VocabSize)
		}
		if _, _, err := pipe.Classify(seq); err != nil {
			t.Fatal(err)
		}
	})
}
