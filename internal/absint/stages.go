package absint

import (
	"strings"

	"github.com/kfrida1/csdinf/internal/lstm"
)

// Stage identifiers name every fixed-point intermediate the kernels compute,
// prefixed with the kernel that computes it (the names match the kernel
// constants in internal/kernels). The kernels' numeric probe reports concrete
// values under the same identifiers, which is what lets
// FuzzIntervalSoundness match observations to predictions.
const (
	// StageEmbed is the quantized embedding value consumed per item.
	StageEmbed = "kernel_preprocess/embed"

	// StageCellForgetRaw is the raw scale-S² product f⊙c of the cell update.
	StageCellForgetRaw = "kernel_hidden_state/f_c_raw"
	// StageCellInputRaw is the raw scale-S² product i⊙C' of the cell update.
	StageCellInputRaw = "kernel_hidden_state/i_cand_raw"
	// StageCellState is the cell state c after the update, which feeds the
	// softsign cell activation. It accumulates over SeqLen steps.
	StageCellState = "kernel_hidden_state/cell"
	// StageCellAct is softsign(c).
	StageCellAct = "kernel_hidden_state/cell_act"
	// StageHiddenRaw is the raw scale-S² product o⊙softsign(c).
	StageHiddenRaw = "kernel_hidden_state/o_act_raw"
	// StageHiddenState is the hidden state h fed back into the gates.
	StageHiddenState = "kernel_hidden_state/hidden"
	// StageFCAcc is the raw scale-S² accumulator of the FC head dot product.
	StageFCAcc = "kernel_hidden_state/fc_acc"
	// StageLogit is the classification logit.
	StageLogit = "kernel_hidden_state/logit"
)

// Per-gate stage parts, composed with GateStage.
const (
	// StageWxAcc is the raw scale-S² accumulator of Wx·x.
	StageWxAcc = "wx_acc"
	// StageWhAcc is the raw scale-S² accumulator of Wh·h.
	StageWhAcc = "wh_acc"
	// StagePreact is the pre-activation sum Wx·x + Wh·h + b.
	StagePreact = "preact"
	// StageGateOut is the activated gate output.
	StageGateOut = "out"
)

// Activation names recorded on stages that feed an activation evaluator.
const (
	ActSigmoid  = "sigmoid"
	ActSoftsign = "softsign"
)

// GateSlug returns the stage-identifier slug for a gate: i, f, o, cand.
// (GateName.String uses the paper's C′ notation, which is hostile to
// machine-readable identifiers.)
func GateSlug(g lstm.GateName) string {
	if g == lstm.GateCandidate {
		return "cand"
	}
	return g.String()
}

// GateStage composes the stage identifier of a per-gate intermediate, e.g.
// GateStage(lstm.GateInput, StageWxAcc) = "kernel_gates/i/wx_acc".
func GateStage(g lstm.GateName, part string) string {
	return "kernel_gates/" + GateSlug(g) + "/" + part
}

// kernelOf extracts the kernel prefix of a stage identifier.
func kernelOf(stage string) string {
	if i := strings.IndexByte(stage, '/'); i >= 0 {
		return stage[:i]
	}
	return stage
}
