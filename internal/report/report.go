// Package report implements a Cuckoo-Sandbox-style analysis report format.
//
// The paper's dataset pipeline (Appendix A) detonates samples in Cuckoo
// Sandbox, which emits JSON analysis reports containing the ordered API
// calls of every monitored process; those reports are then flattened into
// the training corpus. This package provides that interchange layer: the
// trace generator can emit reports in the same shape Cuckoo produces
// (analysis info, per-process call lists with categories and timestamps),
// and the dataset builder can ingest a directory of reports exactly as the
// paper's tooling ingested real ones.
package report

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/kfrida1/csdinf/internal/winapi"
)

// Report mirrors the subset of a Cuckoo analysis report the corpus
// pipeline consumes.
type Report struct {
	// Info describes the analysis task.
	Info Info `json:"info"`
	// Target describes the detonated sample or monitored workload.
	Target Target `json:"target"`
	// Behavior holds the API-call activity.
	Behavior Behavior `json:"behavior"`
}

// Info is the analysis metadata.
type Info struct {
	ID       int    `json:"id"`
	Category string `json:"category"` // "file" for detonations
	Machine  string `json:"machine"`  // e.g. "win10-x64"
	Package  string `json:"package"`  // e.g. "exe"
}

// Target identifies the sample.
type Target struct {
	Name string `json:"name"`
	// Family is empty for benign workloads.
	Family string `json:"family,omitempty"`
	// Variant distinguishes family variants.
	Variant int `json:"variant,omitempty"`
}

// Behavior carries per-process API activity.
type Behavior struct {
	Processes []Process `json:"processes"`
}

// Process is one monitored process.
type Process struct {
	PID   int    `json:"pid"`
	Name  string `json:"process_name"`
	Calls []Call `json:"calls"`
}

// Call is one API invocation.
type Call struct {
	// API is the Windows API name.
	API string `json:"api"`
	// Category is the behavioural category Cuckoo assigns.
	Category string `json:"category"`
	// Time is a monotone per-process sequence timestamp.
	Time int64 `json:"time"`
}

// FromTrace builds a single-process report from an API-call ID trace.
func FromTrace(info Info, target Target, trace []int) (*Report, error) {
	calls := make([]Call, len(trace))
	for i, id := range trace {
		name, err := winapi.Name(id)
		if err != nil {
			return nil, fmt.Errorf("report: trace position %d: %w", i, err)
		}
		cat, err := winapi.CategoryOf(id)
		if err != nil {
			return nil, fmt.Errorf("report: trace position %d: %w", i, err)
		}
		calls[i] = Call{API: name, Category: cat.String(), Time: int64(i)}
	}
	return &Report{
		Info:   info,
		Target: target,
		Behavior: Behavior{Processes: []Process{{
			PID: 4242, Name: target.Name, Calls: calls,
		}}},
	}, nil
}

// ErrBadReport wraps all parse/validation failures.
var ErrBadReport = errors.New("report: malformed analysis report")

// Write serializes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("report: encode: %w", err)
	}
	return nil
}

// Read parses a JSON analysis report.
func Read(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadReport, err)
	}
	if len(r.Behavior.Processes) == 0 {
		return nil, fmt.Errorf("%w: no processes", ErrBadReport)
	}
	return &r, nil
}

// Trace flattens the report back into the ordered API-call ID sequence "in
// the order in which they would be observed on a system housing a CSD"
// (Appendix A): calls from all processes merged by timestamp.
func (r *Report) Trace() ([]int, error) {
	var total int
	for _, p := range r.Behavior.Processes {
		total += len(p.Calls)
	}
	if total == 0 {
		return nil, fmt.Errorf("%w: no API calls", ErrBadReport)
	}
	// k-way merge by Time; process lists are individually time-ordered.
	idx := make([]int, len(r.Behavior.Processes))
	out := make([]int, 0, total)
	for len(out) < total {
		best, bestTime := -1, int64(0)
		for pi, p := range r.Behavior.Processes {
			if idx[pi] >= len(p.Calls) {
				continue
			}
			t := p.Calls[idx[pi]].Time
			if best == -1 || t < bestTime {
				best, bestTime = pi, t
			}
		}
		call := r.Behavior.Processes[best].Calls[idx[best]]
		idx[best]++
		id, err := winapi.ID(call.API)
		if err != nil {
			return nil, fmt.Errorf("%w: unknown API %q", ErrBadReport, call.API)
		}
		out = append(out, id)
	}
	return out, nil
}

// Ransomware reports the ground-truth label encoded in the target.
func (r *Report) Ransomware() bool { return r.Target.Family != "" }
