package report

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"github.com/kfrida1/csdinf/internal/sandbox"
	"github.com/kfrida1/csdinf/internal/winapi"
)

func sampleTrace(t *testing.T) []int {
	t.Helper()
	p, err := sandbox.RansomwareProfile("Cerber", 1)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := p.Generate(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

func TestFromTraceRoundTrip(t *testing.T) {
	trace := sampleTrace(t)
	r, err := FromTrace(
		Info{ID: 1, Category: "file", Machine: "win10-x64", Package: "exe"},
		Target{Name: "cerber_v1.exe", Family: "Cerber", Variant: 1},
		trace,
	)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Ransomware() {
		t.Fatal("family-tagged report not labelled ransomware")
	}
	got, err := r.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trace) {
		t.Fatalf("trace length %d, want %d", len(got), len(trace))
	}
	for i := range trace {
		if got[i] != trace[i] {
			t.Fatalf("call %d = %d, want %d", i, got[i], trace[i])
		}
	}
}

func TestFromTraceRejectsOOV(t *testing.T) {
	if _, err := FromTrace(Info{}, Target{}, []int{99999}); err == nil {
		t.Fatal("OOV item accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	trace := sampleTrace(t)
	r, err := FromTrace(Info{ID: 7}, Target{Name: "x.exe", Family: "Cerber"}, trace)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// Cuckoo-shaped JSON keys must be present.
	for _, key := range []string{`"behavior"`, `"processes"`, `"api"`, `"category"`, `"info"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("JSON missing key %s", key)
		}
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gotTrace, err := got.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotTrace) != len(trace) {
		t.Fatalf("round trip length %d, want %d", len(gotTrace), len(trace))
	}
	if got.Info.ID != 7 || got.Target.Family != "Cerber" {
		t.Fatalf("metadata lost: %+v", got)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"not json":     "not json at all",
		"no processes": `{"info":{"id":1},"behavior":{"processes":[]}}`,
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(input)); !errors.Is(err, ErrBadReport) {
				t.Fatalf("error = %v, want ErrBadReport", err)
			}
		})
	}
}

func TestTraceErrors(t *testing.T) {
	empty := &Report{Behavior: Behavior{Processes: []Process{{PID: 1}}}}
	if _, err := empty.Trace(); !errors.Is(err, ErrBadReport) {
		t.Errorf("empty calls: error = %v", err)
	}
	bad := &Report{Behavior: Behavior{Processes: []Process{{
		PID: 1, Calls: []Call{{API: "NotAnAPI", Time: 0}},
	}}}}
	if _, err := bad.Trace(); !errors.Is(err, ErrBadReport) {
		t.Errorf("unknown API: error = %v", err)
	}
}

func TestTraceMergesProcessesByTime(t *testing.T) {
	a, _ := winapi.ID("CreateFileW")
	b, _ := winapi.ID("ReadFile")
	c, _ := winapi.ID("WriteFile")
	r := &Report{Behavior: Behavior{Processes: []Process{
		{PID: 1, Calls: []Call{{API: "CreateFileW", Time: 0}, {API: "WriteFile", Time: 4}}},
		{PID: 2, Calls: []Call{{API: "ReadFile", Time: 2}}},
	}}}
	got, err := r.Trace()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{a, b, c}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged trace = %v, want %v", got, want)
		}
	}
}

func TestBenignReportLabel(t *testing.T) {
	r, err := FromTrace(Info{}, Target{Name: "firefox.exe"}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ransomware() {
		t.Fatal("benign target labelled ransomware")
	}
}

// Property: FromTrace → Trace is the identity for any valid trace.
func TestPropReportTraceIdentity(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		trace := make([]int, len(raw))
		for i, r := range raw {
			trace[i] = int(r) % winapi.VocabSize
		}
		rep, err := FromTrace(Info{}, Target{Name: "t"}, trace)
		if err != nil {
			return false
		}
		got, err := rep.Trace()
		if err != nil || len(got) != len(trace) {
			return false
		}
		for i := range trace {
			if got[i] != trace[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
