// Package tensor provides the minimal dense linear algebra the offline
// trainer and reference model need: vectors, row-major matrices, matrix-
// vector products, and weight initialization.
//
// It is intentionally not a general tensor library — the model in the paper
// is a single-layer LSTM with an embedding table and a one-unit head, so
// everything here is 1-D or 2-D, float64, and allocation-conscious.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Zero sets every element of v to 0 in place.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Add accumulates w into v in place. It panics on length mismatch: shapes in
// this model are fixed at construction, so a mismatch is a programming error.
func (v Vector) Add(w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: add length mismatch %d != %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += w[i]
	}
}

// Scale multiplies every element of v by s in place.
func (v Vector) Scale(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d != %d", len(v), len(w)))
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	return math.Sqrt(v.Dot(v))
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	// Data holds Rows*Cols values; element (r, c) is Data[r*Cols+c].
	Data []float64
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns row r as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) Vector { return Vector(m.Data[r*m.Cols : (r+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes dst = m · x. dst must have length m.Rows and x length
// m.Cols; MulVec panics otherwise (fixed shapes, programming error).
func (m *Matrix) MulVec(dst, x Vector) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("tensor: mulvec shape mismatch: %dx%d by %d into %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		var s float64
		for c, xv := range x {
			s += row[c] * xv
		}
		dst[r] = s
	}
}

// MulVecT computes dst = mᵀ · x (used in backpropagation). dst must have
// length m.Cols and x length m.Rows.
func (m *Matrix) MulVecT(dst, x Vector) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: mulvecT shape mismatch: %dx%d ᵀ by %d into %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for c := range dst {
		dst[c] = 0
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		xr := x[r]
		for c := range row {
			dst[c] += row[c] * xr
		}
	}
}

// AddOuter accumulates the outer product a·bᵀ into m (gradient accumulation).
func (m *Matrix) AddOuter(a, b Vector) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic(fmt.Sprintf("tensor: addouter shape mismatch: %dx%d += %d outer %d",
			m.Rows, m.Cols, len(a), len(b)))
	}
	for r := range a {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		ar := a[r]
		for c := range row {
			row[c] += ar * b[c]
		}
	}
}

// AddScaled accumulates s*other into m in place.
func (m *Matrix) AddScaled(other *Matrix, s float64) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("tensor: addscaled shape mismatch %dx%d vs %dx%d",
			m.Rows, m.Cols, other.Rows, other.Cols))
	}
	for i := range m.Data {
		m.Data[i] += s * other.Data[i]
	}
}

// XavierFill fills m with Glorot/Xavier-uniform values drawn from rng:
// U(-L, L) with L = sqrt(6/(fanIn+fanOut)). This is the initializer the
// offline trainer uses for weight matrices.
func (m *Matrix) XavierFill(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// UniformFill fills v with U(-limit, limit) values drawn from rng.
func (v Vector) UniformFill(rng *rand.Rand, limit float64) {
	for i := range v {
		v[i] = (rng.Float64()*2 - 1) * limit
	}
}

// ClipNorm rescales v in place so its Euclidean norm is at most maxNorm, and
// reports whether clipping occurred. Gradient clipping keeps BPTT stable on
// long (length-100) sequences.
func (v Vector) ClipNorm(maxNorm float64) bool {
	n := v.Norm()
	if n <= maxNorm || n == 0 {
		return false
	}
	v.Scale(maxNorm / n)
	return true
}
