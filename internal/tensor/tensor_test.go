package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorBasics(t *testing.T) {
	v := NewVector(3)
	if len(v) != 3 {
		t.Fatalf("NewVector(3) length = %d", len(v))
	}
	v[0], v[1], v[2] = 1, 2, 3
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
	v.Add(Vector{1, 1, 1})
	if v[2] != 4 {
		t.Fatalf("Add: v = %v", v)
	}
	v.Scale(2)
	if v[0] != 4 || v[1] != 6 || v[2] != 8 {
		t.Fatalf("Scale: v = %v", v)
	}
	v.Zero()
	for i, x := range v {
		if x != 0 {
			t.Fatalf("Zero: v[%d] = %v", i, x)
		}
	}
}

func TestVectorDotNorm(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Dot(Vector{1, 2}); got != 11 {
		t.Errorf("Dot = %v, want 11", got)
	}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestVectorMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"add": func() { Vector{1}.Add(Vector{1, 2}) },
		"dot": func() { Vector{1}.Dot(Vector{1, 2}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with mismatched lengths did not panic", name)
				}
			}()
			f()
		})
	}
}

func TestMatrixAtSetRow(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Fatalf("At(1,2) = %v", got)
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Fatalf("Row(1) = %v", row)
	}
	row[0] = 5 // Row aliases storage.
	if m.At(1, 0) != 5 {
		t.Fatal("Row does not alias matrix storage")
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := NewVector(2)
	m.MulVec(dst, Vector{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", dst)
	}
}

func TestMatrixMulVecT(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := NewVector(3)
	m.MulVecT(dst, Vector{1, 2})
	// mᵀ·[1,2] = [1+8, 2+10, 3+12]
	want := Vector{9, 12, 15}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecT = %v, want %v", dst, want)
		}
	}
}

func TestMatrixAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuter(Vector{1, 2}, Vector{3, 4})
	want := []float64{3, 4, 6, 8}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("AddOuter = %v, want %v", m.Data, want)
		}
	}
}

func TestMatrixAddScaled(t *testing.T) {
	m := NewMatrix(1, 2)
	o := NewMatrix(1, 2)
	copy(o.Data, []float64{2, 4})
	m.AddScaled(o, 0.5)
	if m.Data[0] != 1 || m.Data[1] != 2 {
		t.Fatalf("AddScaled = %v", m.Data)
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(1, 1)
	m.Set(0, 0, 3)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 3 {
		t.Fatal("Clone aliases original")
	}
}

func TestMatrixShapePanics(t *testing.T) {
	m := NewMatrix(2, 3)
	cases := map[string]func(){
		"mulvec dst":   func() { m.MulVec(NewVector(3), NewVector(3)) },
		"mulvec x":     func() { m.MulVec(NewVector(2), NewVector(2)) },
		"mulvecT":      func() { m.MulVecT(NewVector(2), NewVector(2)) },
		"addouter":     func() { m.AddOuter(NewVector(3), NewVector(3)) },
		"addscaled":    func() { m.AddScaled(NewMatrix(3, 2), 1) },
		"negative dim": func() { NewMatrix(-1, 2) },
	}
	for name, f := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		})
	}
}

func TestXavierFillRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(32, 40)
	m.XavierFill(rng, 40, 32)
	limit := math.Sqrt(6.0 / 72.0)
	for i, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("Xavier value [%d] = %v outside ±%v", i, v, limit)
		}
	}
	// Must not be all-zero (vanishingly unlikely with a real fill).
	var sum float64
	for _, v := range m.Data {
		sum += math.Abs(v)
	}
	if sum == 0 {
		t.Fatal("XavierFill produced all zeros")
	}
}

func TestUniformFill(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := NewVector(100)
	v.UniformFill(rng, 0.5)
	for i, x := range v {
		if x < -0.5 || x > 0.5 {
			t.Fatalf("UniformFill [%d] = %v outside ±0.5", i, x)
		}
	}
}

func TestClipNorm(t *testing.T) {
	v := Vector{3, 4} // norm 5
	if clipped := v.ClipNorm(10); clipped {
		t.Fatal("ClipNorm clipped a vector already under the bound")
	}
	if clipped := v.ClipNorm(1); !clipped {
		t.Fatal("ClipNorm failed to clip")
	}
	if got := v.Norm(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("post-clip norm = %v, want 1", got)
	}
	z := Vector{0, 0}
	if z.ClipNorm(1) {
		t.Fatal("ClipNorm clipped the zero vector")
	}
}

// Property: MulVec is linear: M(ax) == a * Mx.
func TestPropMulVecLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMatrix(4, 5)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	f := func(scale int8, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := NewVector(5)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		a := float64(scale) / 16
		ax := x.Clone()
		ax.Scale(a)
		y1, y2 := NewVector(4), NewVector(4)
		m.MulVec(y1, ax)
		m.MulVec(y2, x)
		y2.Scale(a)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-9*(1+math.Abs(y2[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: xᵀ(My) == (Mᵀx)ᵀy — MulVec and MulVecT are adjoint.
func TestPropMulVecAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMatrix(3, 4)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		x, y := NewVector(3), NewVector(4)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		my := NewVector(3)
		m.MulVec(my, y)
		mtx := NewVector(4)
		m.MulVecT(mtx, x)
		lhs, rhs := x.Dot(my), mtx.Dot(y)
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMulVec32x40(b *testing.B) {
	m := NewMatrix(32, 40)
	rng := rand.New(rand.NewSource(4))
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	x, dst := NewVector(40), NewVector(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}
