package kernels

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/kfrida1/csdinf/internal/activation"
	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/lstm"
)

func testModel(t *testing.T) *lstm.Model {
	t.Helper()
	m, err := lstm.NewModel(lstm.Config{
		VocabSize: 20, EmbedDim: 4, HiddenSize: 8, CellActivation: activation.Softsign,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLevelString(t *testing.T) {
	tests := []struct {
		l    OptLevel
		want string
	}{
		{LevelVanilla, "Vanilla"},
		{LevelII, "II"},
		{LevelFixedPoint, "Fixed-point"},
		{OptLevel(9), "OptLevel(9)"},
	}
	for _, tt := range tests {
		if got := tt.l.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	m := testModel(t)
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil model: expected error")
	}
	if _, err := New(m, Config{Level: OptLevel(42)}); err == nil {
		t.Error("bad level: expected error")
	}
	if _, err := New(m, Config{SeqLen: -1}); err == nil {
		t.Error("negative seqlen: expected error")
	}
	if _, err := New(m, Config{Scale: -3}); err == nil {
		t.Error("bad scale: expected error")
	}
}

func TestDefaultsToPaperSetup(t *testing.T) {
	m := testModel(t)
	p, err := New(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Level() != LevelFixedPoint {
		t.Errorf("default level = %v, want Fixed-point", p.Level())
	}
	if p.SeqLen() != 100 {
		t.Errorf("default seqlen = %d, want 100", p.SeqLen())
	}
	if p.Device().Part().Name != fpga.AlveoU200.Name {
		t.Errorf("default part = %s, want U200", p.Device().Part().Name)
	}
}

func TestFloatPathMatchesReferenceModel(t *testing.T) {
	m := testModel(t)
	seq := []int{1, 5, 3, 19, 0, 7, 7, 2, 11, 4}
	for _, lv := range []OptLevel{LevelVanilla, LevelII} {
		p, err := New(m, Config{Level: lv, SeqLen: len(seq)})
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := p.Classify(seq)
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.Forward(seq)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Probability-want) > 1e-12 {
			t.Errorf("level %v: pipeline %v vs reference %v", lv, res.Probability, want)
		}
	}
}

func TestFixedPathTracksFloat(t *testing.T) {
	// Train a toy model so logits are away from zero, then require the
	// fixed-point pipeline to agree with the float reference.
	m, err := lstm.NewModel(lstm.Config{
		VocabSize: 10, EmbedDim: 4, HiddenSize: 8, CellActivation: activation.Softsign,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	type ex struct {
		seq   []int
		label bool
	}
	var exs []ex
	for i := 0; i < 30; i++ {
		seq := []int{2, 3, 4, 5, 6, 7, 8, 9}
		label := i%2 == 0
		if label {
			seq[i%8] = 1
		}
		exs = append(exs, ex{seq, label})
	}
	opt := &lstm.Adam{LR: 0.02}
	g := m.NewGrads()
	for epoch := 0; epoch < 40; epoch++ {
		g.Zero()
		for _, e := range exs {
			if _, err := m.Backward(e.seq, e.label, g, 5); err != nil {
				t.Fatal(err)
			}
		}
		if err := opt.Apply(m, g, len(exs)); err != nil {
			t.Fatal(err)
		}
	}

	p, err := New(m, Config{Level: LevelFixedPoint, SeqLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, e := range exs {
		res, _, err := p.Classify(e.seq)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := m.Predict(e.seq)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ransomware == want {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(exs)); frac < 0.95 {
		t.Fatalf("fixed/float agreement = %v, want >= 0.95", frac)
	}
}

func TestProcessItemCounterFires(t *testing.T) {
	m := testModel(t)
	p, err := New(m, Config{Level: LevelFixedPoint, SeqLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		_, done, err := p.ProcessItem(1)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			t.Fatalf("counter fired early at item %d", i)
		}
	}
	res, done, err := p.ProcessItem(1)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("counter did not fire at sequence length")
	}
	if res.Probability <= 0 || res.Probability >= 1 {
		t.Fatalf("probability %v outside (0,1)", res.Probability)
	}
	// State must have reset: a second sequence classifies identically.
	var res2 Result
	for i := 0; i < 3; i++ {
		res2, done, err = p.ProcessItem(1)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !done || res2.Probability != res.Probability {
		t.Fatalf("post-reset sequence differs: %v vs %v", res2.Probability, res.Probability)
	}
}

func TestProcessItemOOV(t *testing.T) {
	m := testModel(t)
	for _, lv := range Levels {
		p, err := New(m, Config{Level: lv, SeqLen: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := p.ProcessItem(99); !errors.Is(err, lstm.ErrItemOutOfRange) {
			t.Errorf("level %v: error = %v, want ErrItemOutOfRange", lv, err)
		}
	}
}

func TestClassifyLengthValidation(t *testing.T) {
	m := testModel(t)
	p, err := New(m, Config{Level: LevelVanilla, SeqLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Classify([]int{1, 2}); err == nil {
		t.Error("short sequence: expected error")
	}
	if _, _, err := p.Classify([]int{1, 2, 3, 4, 5, 6}); err == nil {
		t.Error("long sequence: expected error")
	}
}

func TestOptimizationOrdering(t *testing.T) {
	// The whole point of Fig. 3: each added optimization reduces total
	// per-item latency, and the gates kernel collapses at the fixed-point
	// level while preprocess stays roughly flat.
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	totals := make(map[OptLevel]float64)
	gates := make(map[OptLevel]float64)
	pres := make(map[OptLevel]float64)
	for _, lv := range Levels {
		p, err := New(m, Config{Level: lv})
		if err != nil {
			t.Fatal(err)
		}
		pre, g, _, tot := p.KernelMicros()
		totals[lv], gates[lv], pres[lv] = tot, g, pre
	}
	if !(totals[LevelVanilla] > totals[LevelII] && totals[LevelII] > totals[LevelFixedPoint]) {
		t.Fatalf("totals not strictly improving: %v", totals)
	}
	if gates[LevelFixedPoint] > gates[LevelII]/50 {
		t.Fatalf("fixed-point gates %v should collapse vs II %v", gates[LevelFixedPoint], gates[LevelII])
	}
	if math.Abs(pres[LevelVanilla]-pres[LevelII]) > 0.1 {
		t.Fatalf("preprocess should stay flat Vanilla→II: %v vs %v", pres[LevelVanilla], pres[LevelII])
	}
	if pres[LevelFixedPoint] < pres[LevelVanilla] {
		t.Fatalf("fixed-point preprocess should cost slightly more (wide beats): %v vs %v",
			pres[LevelFixedPoint], pres[LevelVanilla])
	}
}

func TestCalibrationAgainstFig3(t *testing.T) {
	// Paper Fig. 3 values in µs; we require each kernel within 25% (or 0.05
	// µs absolute for the near-zero bar) and totals within 10%.
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	paper := map[OptLevel][3]float64{
		LevelVanilla:    {0.74, 5.076, 1.651},
		LevelII:         {0.743, 2.001, 1.277},
		LevelFixedPoint: {0.8, 0.00333, 1.348},
	}
	paperTotals := map[OptLevel]float64{
		LevelVanilla:    7.467, // sum of the Fig. 3 bars (prose says ~7.153)
		LevelII:         4.021,
		LevelFixedPoint: 2.15133,
	}
	for _, lv := range Levels {
		p, err := New(m, Config{Level: lv})
		if err != nil {
			t.Fatal(err)
		}
		pre, g, h, tot := p.KernelMicros()
		want := paper[lv]
		for i, got := range []float64{pre, g, h} {
			w := want[i]
			if w < 0.05 {
				if math.Abs(got-w) > 0.05 {
					t.Errorf("%v kernel %d = %v µs, paper %v (absolute tolerance)", lv, i, got, w)
				}
				continue
			}
			if rel := math.Abs(got-w) / w; rel > 0.25 {
				t.Errorf("%v kernel %d = %v µs, paper %v (off %.0f%%)", lv, i, got, w, rel*100)
			}
		}
		if rel := math.Abs(tot-paperTotals[lv]) / paperTotals[lv]; rel > 0.10 {
			t.Errorf("%v total = %v µs, paper %v (off %.0f%%)", lv, tot, paperTotals[lv], rel*100)
		}
	}
}

func TestFixedPointGatesExceedKU15P(t *testing.T) {
	// The fully-unrolled fixed-point gate CUs need 4·H·(O+H) DSPs = 5,120
	// for the paper model — more than the SmartSSD's KU15P provides. The
	// paper evaluates on the U200, where they fit.
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(m, Config{Level: LevelFixedPoint, Part: fpga.KU15P}); !errors.Is(err, fpga.ErrResourceExhausted) {
		t.Fatalf("KU15P placement error = %v, want ErrResourceExhausted", err)
	}
	if _, err := New(m, Config{Level: LevelFixedPoint, Part: fpga.AlveoU200}); err != nil {
		t.Fatalf("U200 placement failed: %v", err)
	}
	// The float levels fit the KU15P fine.
	if _, err := New(m, Config{Level: LevelII, Part: fpga.KU15P}); err != nil {
		t.Fatalf("II level on KU15P failed: %v", err)
	}
}

func TestPipelinedItemCycles(t *testing.T) {
	m := testModel(t)
	p, err := New(m, Config{Level: LevelFixedPoint})
	if err != nil {
		t.Fatal(err)
	}
	pre, g, h, _ := p.ItemCycles()
	want := g + h
	if pre > want {
		want = pre
	}
	if got := p.PipelinedItemCycles(); got != want {
		t.Fatalf("PipelinedItemCycles = %d, want %d", got, want)
	}
	if got, _, _, tot := p.ItemCycles(); got <= 0 || tot <= 0 {
		t.Fatal("non-positive cycle counts")
	}
}

func TestClassifyReturnsCycles(t *testing.T) {
	m := testModel(t)
	p, err := New(m, Config{Level: LevelFixedPoint, SeqLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, cycles, err := p.Classify([]int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, perItem := p.ItemCycles()
	if cycles != 4*perItem {
		t.Fatalf("Classify cycles = %d, want %d", cycles, 4*perItem)
	}
}

func BenchmarkClassifyFixedPoint(b *testing.B) {
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	p, err := New(m, Config{Level: LevelFixedPoint})
	if err != nil {
		b.Fatal(err)
	}
	seq := make([]int, 100)
	for i := range seq {
		seq[i] = i % 278
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Classify(seq); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGateCUAblation(t *testing.T) {
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var prevGates int64 = -1
	for _, cus := range []int{1, 2, 4} {
		p, err := New(m, Config{Level: LevelVanilla, GateCUs: cus})
		if err != nil {
			t.Fatalf("CUs=%d: %v", cus, err)
		}
		_, gates, _, _ := p.ItemCycles()
		if prevGates > 0 && gates >= prevGates {
			t.Fatalf("more CUs did not reduce gate latency: %d CUs -> %d cycles (prev %d)",
				cus, gates, prevGates)
		}
		prevGates = gates
	}
	// 1 CU serializes the four gates: exactly 4x the 4-CU latency.
	p1, err := New(m, Config{Level: LevelVanilla, GateCUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	p4, err := New(m, Config{Level: LevelVanilla, GateCUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, g1, _, _ := p1.ItemCycles()
	_, g4, _, _ := p4.ItemCycles()
	if g1 != 4*g4 {
		t.Fatalf("1-CU gates = %d, want 4x the 4-CU %d", g1, g4)
	}
	// Invalid CU counts rejected.
	for _, bad := range []int{3, 5, 8, -1} {
		if _, err := New(m, Config{GateCUs: bad}); err == nil {
			t.Errorf("GateCUs=%d accepted", bad)
		}
	}
}

func TestStreamingAcceleration(t *testing.T) {
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, lv := range []OptLevel{LevelII, LevelFixedPoint, LevelMixed} {
		base, err := New(m, Config{Level: lv})
		if err != nil {
			t.Fatal(err)
		}
		stream, err := New(m, Config{Level: lv, Streaming: true})
		if err != nil {
			t.Fatalf("streaming at %v: %v", lv, err)
		}
		_, _, _, bt := base.ItemCycles()
		_, _, _, st := stream.ItemCycles()
		if st >= bt {
			t.Errorf("%v: streaming %d cycles not faster than buffered %d", lv, st, bt)
		}
		// Functional output must be identical: streaming only changes the
		// data movement, not the arithmetic.
		seq := make([]int, 100)
		for i := range seq {
			seq[i] = i % 278
		}
		rb, _, err := base.Classify(seq)
		if err != nil {
			t.Fatal(err)
		}
		rs, _, err := stream.Classify(seq)
		if err != nil {
			t.Fatal(err)
		}
		if rb.Probability != rs.Probability {
			t.Errorf("%v: streaming changed the classification: %v vs %v",
				lv, rs.Probability, rb.Probability)
		}
	}
}

func TestStreamingRequiresIILevel(t *testing.T) {
	m := testModel(t)
	if _, err := New(m, Config{Level: LevelVanilla, Streaming: true}); err == nil {
		t.Fatal("streaming at vanilla level accepted")
	}
}

// Property: at the float levels the pipeline is exactly the reference
// forward pass for any sequence.
func TestPropFloatPipelineEqualsReference(t *testing.T) {
	m := testModel(t)
	p, err := New(m, Config{Level: LevelII, SeqLen: 6})
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw [6]uint8) bool {
		seq := make([]int, 6)
		for i, r := range raw {
			seq[i] = int(r) % 20
		}
		res, _, err := p.Classify(seq)
		if err != nil {
			return false
		}
		want, err := m.Forward(seq)
		if err != nil {
			return false
		}
		return math.Abs(res.Probability-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the fixed-point hidden state stays strictly inside (-S, S)
// (|h| = |o·softsign(C)| < 1 in real terms) for any input stream.
func TestPropFixedStateBounded(t *testing.T) {
	m := testModel(t)
	p, err := New(m, Config{Level: LevelFixedPoint, SeqLen: 1000})
	if err != nil {
		t.Fatal(err)
	}
	one := p.arith.One()
	f := func(raw []uint8) bool {
		p.Reset()
		for _, r := range raw {
			if _, _, err := p.ProcessItem(int(r) % 20); err != nil {
				return false
			}
		}
		for _, h := range p.hQ {
			if h <= -one || h >= one {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: Classify is deterministic and state-isolated — interleaving
// other sequences never changes a sequence's classification.
func TestPropClassifyStateIsolation(t *testing.T) {
	m := testModel(t)
	p, err := New(m, Config{Level: LevelFixedPoint, SeqLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b [5]uint8) bool {
		seqA := make([]int, 5)
		seqB := make([]int, 5)
		for i := range a {
			seqA[i] = int(a[i]) % 20
			seqB[i] = int(b[i]) % 20
		}
		r1, _, err := p.Classify(seqA)
		if err != nil {
			return false
		}
		if _, _, err := p.Classify(seqB); err != nil {
			return false
		}
		r2, _, err := p.Classify(seqA)
		if err != nil {
			return false
		}
		return r1.Probability == r2.Probability
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
