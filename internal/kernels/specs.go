package kernels

import (
	"fmt"

	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/hls"
	"github.com/kfrida1/csdinf/internal/lstm"
)

// This file defines the HLS loop-nest descriptors whose schedules produce
// the per-kernel latencies of Fig. 3. Every fixed cycle constant is named
// and justified; together with the operator latencies in internal/hls they
// are the calibration of the timing model. EXPERIMENTS.md records how close
// the scheduled values land to the paper's measurements.

const (
	// scalarArgLatency is the cost of fetching the kernel's scalar
	// arguments (item index, counter state) over AXI-Lite.
	scalarArgLatency = 20
	// treeDrainLatency is the drain of the floating-point adder tree that
	// reduces the 40-element MAC partial sums (⌈log2 40⌉ = 6 levels of
	// 7-cycle fadds).
	treeDrainLatency = 42
	// floatSigmoidLatency is the tail evaluation of a floating-point
	// sigmoid: exp (20) + fadd (7) + fdiv (16).
	floatSigmoidLatency = 43
	// intTreeDrainLatency is the integer adder-tree drain at the
	// fixed-point level (6 levels of 1-cycle adds).
	intTreeDrainLatency = 6
	// planSigmoidLatency is the fixed-point PLAN sigmoid tail: compare
	// ladder + multiply + add.
	planSigmoidLatency = 7
	// wideBeatFactor doubles burst beats at the fixed-point level: 64-bit
	// scaled integers occupy two 32-bit AXI beats each.
	wideBeatFactor = 2
)

// kernelSpecs builds the three kernel specifications (preprocess, gates ×4
// CUs, hidden_state) for the model dimensions at the given optimization
// level.
func kernelSpecs(cfg lstm.Config, level OptLevel, gateCUs int, streaming bool) []fpga.KernelSpec {
	if level == LevelMixed {
		// Mixed precision shares the fixed-point preprocess and
		// hidden-state schedules; only the gate CUs change (mixed.go).
		specs := []fpga.KernelSpec{
			preprocessSpec(cfg, LevelFixedPoint, gateCUs),
			mixedGatesSpec(cfg, gateCUs),
			hiddenStateSpec(cfg, LevelFixedPoint, gateCUs),
		}
		if streaming {
			applyStreaming(specs)
		}
		return specs
	}
	specs := []fpga.KernelSpec{
		preprocessSpec(cfg, level, gateCUs),
		gatesSpec(cfg, level, gateCUs),
		hiddenStateSpec(cfg, level, gateCUs),
	}
	if streaming {
		applyStreaming(specs)
	}
	return specs
}

// applyStreaming rewires the kernel descriptors for AXI4-Stream FIFO
// links: AXI burst prologues vanish (data is pushed, not fetched), copy
// loops shrink to single-beat FIFO writes per element (the fan-out is
// wired in fabric, not executed as a loop), and epilogues lose the AXI
// write retirement. Each stream costs one small FIFO (BRAM).
func applyStreaming(specs []fpga.KernelSpec) {
	for si := range specs {
		spec := &specs[si]
		for li := range spec.Loops {
			l := &spec.Loops[li]
			switch l.Name {
			case "copy_x", "h_copy":
				// The fan-out happens in fabric; the loop just pushes one
				// stream's worth of beats.
				l.Trip = (l.Trip + GateCUs - 1) / GateCUs
				l.Epilogue = 0
			case "mac", "mac_packed":
				l.Prologue = 0
				if l.Epilogue >= hls.AXIWriteLatency {
					l.Epilogue -= hls.AXIWriteLatency
				}
			case "cell_update":
				l.Prologue = 0 // gate vectors stream straight in
			}
		}
		spec.Buffers = append(spec.Buffers, hls.Buffer{
			Name: "stream_fifos", Words: 512,
		})
	}
}

// preprocessSpec models kernel_preprocess: scan the M×O embedding buffer for
// the current item's row (the one-hot dot product of §III-B) and write four
// copies of the embedding to the gate CUs' input buffers.
//
// The kernel is memory-bound, which is why Fig. 3 shows it "fairly fixed"
// across optimization levels (0.74 → 0.743 → 0.8 µs): pragmas cannot
// accelerate AXI traffic, and the fixed-point level actually pays a little
// more because 64-bit scaled integers double the copy beats.
func preprocessSpec(cfg lstm.Config, level OptLevel, gateCUs int) fpga.KernelSpec {
	m, o := cfg.VocabSize, cfg.EmbedDim
	copyBeats := gateCUs * o
	if level == LevelFixedPoint {
		copyBeats *= wideBeatFactor
	}

	scan := hls.Loop{
		// One-hot selection scan over the M embedding rows; the dual-port
		// embedding BRAM lets HLS process two rows per cycle.
		Name: "onehot_scan", Trip: m,
		Body:               []hls.Op{hls.MemRead, hls.IntCmp, hls.Select},
		MemAccessesPerIter: 1,
		Pipeline:           true,
		Unroll:             2,
		Prologue:           scalarArgLatency, // item index over AXI-Lite
	}
	copyOut := hls.Loop{
		// Write GateCUs copies of the O-element embedding to global memory
		// for the gate CUs (§III-C's explicit copy operation).
		Name: "copy_x", Trip: copyBeats,
		Body:               []hls.Op{hls.MemRead, hls.MemWrite},
		MemAccessesPerIter: 2,
		Pipeline:           true,
		Epilogue:           hls.AXIWriteLatency,
	}
	if level >= LevelII {
		scan.ArrayPartition = true
		copyOut.ArrayPartition = true
	}
	return fpga.KernelSpec{
		Name:  KernelPreprocess,
		CUs:   1,
		Loops: []hls.Loop{scan, copyOut},
		Buffers: []hls.Buffer{
			{Name: "embed_table", Words: m * o},
			{Name: "x_out", Words: o, PartitionComplete: level >= LevelII},
		},
	}
}

// gatesSpec models one kernel_gates CU (all four are identical): the
// H×(O+H) MAC array plus the activation tail.
//
//   - Vanilla: the flattened MAC loop auto-pipelines at II=1 but pays AXI
//     prologues for x/h and per-MAC DDR weight traffic, plus the float
//     adder-tree drain and a float sigmoid tail.
//   - II: UNROLL factor 4 with completely partitioned weight buffers cuts
//     the trip count 4×; the AXI prologue and float tails remain.
//   - Fixed-point: integer MACs cost 1 DSP each, so the whole MAC array
//     unrolls fully — the loop collapses to a single pipelined iteration,
//     which is how the paper's 0.00333 µs (≈1 clock cycle) arises. The four
//     CUs then consume 4·H·(O+H) DSPs, which fits the U200 but NOT the
//     SmartSSD's KU15P (see TestFixedPointGatesExceedKU15P).
func gatesSpec(cfg lstm.Config, level OptLevel, gateCUs int) fpga.KernelSpec {
	h, o := cfg.HiddenSize, cfg.EmbedDim
	macs := h * (o + h)

	mac := hls.Loop{
		Name: "mac", Trip: macs,
		Body:               []hls.Op{hls.FMul, hls.FAdd},
		MemAccessesPerIter: 2, // weight word + input word
		Pipeline:           true,
		// x and h(t-1) burst in over AXI before compute (Fig. 2 shows both
		// entering every CU).
		Prologue: 2 * hls.AXIReadLatency,
		Epilogue: treeDrainLatency + floatSigmoidLatency + hls.AXIWriteLatency,
	}
	buffers := []hls.Buffer{
		{Name: "weights", Words: macs},
		{Name: "x_in", Words: o},
		{Name: "h_in", Words: h},
	}

	switch level {
	case LevelII:
		mac.Unroll = 4
		mac.ArrayPartition = true
		for i := range buffers {
			buffers[i].PartitionComplete = true
		}
	case LevelFixedPoint:
		mac.Body = []hls.Op{hls.IntMul, hls.IntAdd}
		mac.Unroll = macs // full unroll: one iteration
		mac.ArrayPartition = true
		mac.Prologue = 0 // inputs stream in through the dataflow FIFOs
		// The fully-unrolled MAC tree and PLAN tail (intTreeDrainLatency +
		// planSigmoidLatency) are absorbed into the pipeline depth; hardware
		// emulation reports the steady-state initiation interval, so no
		// fixed epilogue remains.
		mac.Epilogue = 0
		for i := range buffers {
			buffers[i].PartitionComplete = true
		}
	}
	return fpga.KernelSpec{
		Name:    KernelGates,
		CUs:     gateCUs,
		Loops:   []hls.Loop{mac},
		Buffers: buffers,
	}
}

// hiddenStateSpec models kernel_hidden_state: elementwise cell update with
// the activation applied twice (candidate path already activated in the gate
// CUs; here act(Ct)), the h = o⊙act(Ct) product, the static counter, and the
// write-back of four h copies for the next timestep's gate CUs.
func hiddenStateSpec(cfg lstm.Config, level OptLevel, gateCUs int) fpga.KernelSpec {
	h := cfg.HiddenSize

	// Gate vectors i, f, o, C' arrive over AXI from the four CUs: two DDR
	// banks serve two bursts in parallel, so four vectors take two burst
	// rounds; a third round prefetches the FC weight buffer every
	// invocation so the final-item classification adds no extra latency.
	gatherProlog := 3 * hls.AXIReadLatency

	update := hls.Loop{
		Name: "cell_update", Trip: h,
		// c = f*c + i*cand; act(c); h = o*act(c). Softsign: abs+add+div.
		Body: []hls.Op{
			hls.FMul, hls.FMul, hls.FAdd, // cell update
			hls.FAbs, hls.FAdd, hls.FDiv, // softsign(c)
			hls.FMul, // h = o * act
		},
		MemAccessesPerIter: 5, // read i, f, o, C', write h
		Pipeline:           true,
		Prologue:           gatherProlog,
	}
	copyBeats := gateCUs * h
	counterAndCopy := hls.Loop{
		// Static counter check (§III-B) then write GateCUs copies of h back
		// out for the next item.
		Name: "h_copy", Trip: copyBeats,
		Body:               []hls.Op{hls.MemRead, hls.MemWrite},
		MemAccessesPerIter: 2,
		Pipeline:           true,
		Prologue:           2, // counter increment + compare
		Epilogue:           hls.AXIWriteLatency,
	}
	buffers := []hls.Buffer{
		{Name: "cell_state", Words: h},
		{Name: "gate_in", Words: 4 * h},
		{Name: "fc_weights", Words: h + 1},
	}

	switch level {
	case LevelII:
		update.ArrayPartition = true
		counterAndCopy.ArrayPartition = true
		counterAndCopy.Unroll = 2
		for i := range buffers {
			buffers[i].PartitionComplete = true
		}
	case LevelFixedPoint:
		update.Body = []hls.Op{
			hls.IntMul, hls.IntDivConst, // f*c with scale correction
			hls.IntMul, hls.IntDivConst, // i*cand
			hls.IntAdd,
			hls.IntAbs, hls.IntAdd, hls.IntDivConst, // fixed softsign
			hls.IntMul, hls.IntDivConst, // h = o*act
		}
		update.ArrayPartition = true
		counterAndCopy.Trip = copyBeats * wideBeatFactor // 64-bit copies
		counterAndCopy.ArrayPartition = true
		counterAndCopy.Unroll = 2
		for i := range buffers {
			buffers[i].PartitionComplete = true
		}
	}
	return fpga.KernelSpec{
		Name:    KernelHiddenState,
		CUs:     1,
		Loops:   []hls.Loop{update, counterAndCopy},
		Buffers: buffers,
	}
}

// Specs returns the kernel specifications that cfg would place on the
// device, without deploying anything — the input to the Vitis-style
// compile/link flow (internal/vitis), which mirrors how the paper compiles
// kernel objects with v++ and links them into the FPGA binary.
func Specs(model lstm.Config, cfg Config) ([]fpga.KernelSpec, error) {
	cfg.defaults()
	switch cfg.Level {
	case LevelVanilla, LevelII, LevelFixedPoint, LevelMixed:
	default:
		return nil, fmt.Errorf("kernels: unknown optimization level %d", int(cfg.Level))
	}
	if cfg.GateCUs < 0 || 4%cfg.GateCUs != 0 {
		return nil, fmt.Errorf("kernels: gate CU count %d must divide 4", cfg.GateCUs)
	}
	if cfg.Streaming && cfg.Level < LevelII {
		return nil, fmt.Errorf("kernels: streaming requires level II or above, got %s", cfg.Level)
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return kernelSpecs(model, cfg.Level, cfg.GateCUs, cfg.Streaming), nil
}
