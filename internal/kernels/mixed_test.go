package kernels

import (
	"testing"

	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/lstm"
)

func TestMixedLevelString(t *testing.T) {
	if LevelMixed.String() != "Mixed-precision" {
		t.Fatalf("String() = %q", LevelMixed.String())
	}
}

// trainToyModel returns a model trained on the marker task plus its
// training examples (shared by the mixed-precision fidelity tests).
func trainToyModel(t *testing.T) (*lstm.Model, [][]int, []bool) {
	t.Helper()
	m, err := lstm.NewModel(lstm.Config{
		VocabSize: 10, EmbedDim: 4, HiddenSize: 8, CellActivation: 3, // softsign
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var seqs [][]int
	var labels []bool
	for i := 0; i < 30; i++ {
		seq := []int{2, 3, 4, 5, 6, 7, 8, 9}
		label := i%2 == 0
		if label {
			seq[i%8] = 1
		}
		seqs = append(seqs, seq)
		labels = append(labels, label)
	}
	opt := &lstm.Adam{LR: 0.02}
	g := m.NewGrads()
	for epoch := 0; epoch < 40; epoch++ {
		g.Zero()
		for i, seq := range seqs {
			if _, err := m.Backward(seq, labels[i], g, 5); err != nil {
				t.Fatal(err)
			}
		}
		if err := opt.Apply(m, g, len(seqs)); err != nil {
			t.Fatal(err)
		}
	}
	return m, seqs, labels
}

// TestMixedPrecisionFitsKU15P is the whole point of the extension: the
// paper model deploys on the SmartSSD's own FPGA at LevelMixed, while
// LevelFixedPoint cannot (TestFixedPointGatesExceedKU15P).
func TestMixedPrecisionFitsKU15P(t *testing.T) {
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(m, Config{Level: LevelMixed, Part: fpga.KU15P})
	if err != nil {
		t.Fatalf("mixed precision on KU15P failed: %v", err)
	}
	if used := p.Device().Used().DSP; used > fpga.KU15P.Budget.DSP {
		t.Fatalf("DSP usage %d exceeds KU15P budget", used)
	}
	// Gate DSPs quartered vs full fixed point (5,120 → 1,280).
	if used := p.Device().Used().DSP; used < 1280 || used > 1500 {
		t.Fatalf("mixed DSP usage = %d, expected ~1,280 + small kernels", used)
	}
}

// TestMixedPrecisionAgreement: narrow gate MACs must preserve the trained
// model's decisions on clearly-separated inputs.
func TestMixedPrecisionAgreement(t *testing.T) {
	m, seqs, _ := trainToyModel(t)
	mixed, err := New(m, Config{Level: LevelMixed, SeqLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, seq := range seqs {
		res, _, err := mixed.Classify(seq)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := m.Predict(seq)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ransomware == want {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(seqs)); frac < 0.9 {
		t.Fatalf("mixed/float agreement = %v, want >= 0.9", frac)
	}
}

// TestMixedLatencyComparableToFixed: mixed precision trades precision for
// resources, not speed — per-item latency stays in the fixed-point
// regime (well under the II level).
func TestMixedLatencyComparableToFixed(t *testing.T) {
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	fixedP, err := New(m, Config{Level: LevelFixedPoint})
	if err != nil {
		t.Fatal(err)
	}
	mixedP, err := New(m, Config{Level: LevelMixed})
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, ft := fixedP.KernelMicros()
	_, _, _, mt := mixedP.KernelMicros()
	if mt > ft*1.2 {
		t.Fatalf("mixed total %v µs much slower than fixed %v µs", mt, ft)
	}
	iiP, err := New(m, Config{Level: LevelII})
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, it := iiP.KernelMicros()
	if mt >= it {
		t.Fatalf("mixed total %v µs not better than II level %v µs", mt, it)
	}
}

func TestMixedStateResetBetweenSequences(t *testing.T) {
	m, seqs, _ := trainToyModel(t)
	p, err := New(m, Config{Level: LevelMixed, SeqLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := p.Classify(seqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Classify(seqs[1]); err != nil {
		t.Fatal(err)
	}
	b, _, err := p.Classify(seqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if a.Probability != b.Probability {
		t.Fatalf("state leaked between sequences: %v vs %v", a.Probability, b.Probability)
	}
}
