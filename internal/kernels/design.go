package kernels

import (
	"errors"

	"github.com/kfrida1/csdinf/internal/absint"
	"github.com/kfrida1/csdinf/internal/drc"
	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/lstm"
)

// DesignFor returns the static design-rule checker's view of a
// configuration: the kernel specifications, the dataflow streams of Fig. 2
// (preprocess fans its embedding out to every gate CU; the gate CUs each
// feed the hidden-state kernel), and the DDR-bank connectivity the paper's
// host program would pass to v++ as sp= options. The result feeds drc.Check
// — the pre-deployment gate used by core.Deploy, csdbuild -drc, and
// `csdlint drc` — without scheduling a single loop.
func DesignFor(model lstm.Config, cfg Config) (drc.Design, error) {
	cfg.defaults()
	specs, err := Specs(model, cfg)
	if err != nil {
		return drc.Design{}, err
	}
	return drc.Design{
		Part:    cfg.Part,
		Kernels: specs,
		Streams: []drc.Stream{
			// §III-C: preprocess writes one private embedding copy per gate
			// CU; each gate CU writes one gate vector to the hidden-state
			// kernel's single CU.
			{From: KernelPreprocess, To: KernelGates, FanOut: cfg.GateCUs},
			{From: KernelGates, To: KernelHiddenState, FanOut: 1},
		},
		Connectivity: connectivityFor(specs, cfg.Part),
	}, nil
}

// DesignForModel is DesignFor with the trained weights attached: at the
// fixed-point level it additionally runs the internal/absint interval
// analysis over m's actual weight values and carries the numeric report in
// the design, arming the checker's NUM rule group (accumulator overflow,
// activation-domain escapes, scale coarseness, headroom). The float levels
// have no fixed-width intermediates and LevelMixed's narrow operands are
// bounded by construction, so those levels return the weight-free design
// unchanged. core.Deploy and the csdbuild/csdlint front ends call this form;
// DesignFor remains for configuration-only checks where no trained model
// exists yet.
func DesignForModel(m *lstm.Model, cfg Config) (drc.Design, error) {
	if m == nil {
		return drc.Design{}, errors.New("kernels: nil model")
	}
	cfg.defaults()
	d, err := DesignFor(m.Config(), cfg)
	if err != nil {
		return drc.Design{}, err
	}
	if cfg.Level == LevelFixedPoint {
		rep, err := absint.Analyze(m, absint.Config{Scale: cfg.Scale, SeqLen: cfg.SeqLen})
		if err != nil {
			return drc.Design{}, err
		}
		d.Numeric = rep
	}
	return d, nil
}

// connectivityFor derives the paper's DDR-bank map (§III-C: parameters in
// bank 0, the sequence staging buffer in bank 1 when the part has one):
// each kernel's per-CU AXI masters reach the parameter bank and the
// sequence bank.
func connectivityFor(specs []fpga.KernelSpec, part fpga.Part) map[string][]int {
	banks := part.DDRBanks
	if banks <= 0 {
		banks = 1
	}
	seqBank := 0
	if banks > 1 {
		seqBank = 1
	}
	m := make(map[string][]int, len(specs))
	for _, s := range specs {
		switch s.Name {
		case KernelPreprocess:
			// Reads the embedding table (bank 0) and the staged sequence
			// (bank 1), writes the x copies back to bank 0.
			m[s.Name] = []int{0, seqBank}
		case KernelGates:
			// Each CU reads weights from bank 0 and x/h from the sequence
			// bank.
			m[s.Name] = []int{0, seqBank}
		case KernelHiddenState:
			// Gathers the four gate vectors (bank 0) and writes h copies
			// and the classification result (sequence bank).
			m[s.Name] = []int{0, seqBank}
		default:
			m[s.Name] = []int{0}
		}
	}
	return m
}
