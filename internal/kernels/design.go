package kernels

import (
	"github.com/kfrida1/csdinf/internal/drc"
	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/lstm"
)

// DesignFor returns the static design-rule checker's view of a
// configuration: the kernel specifications, the dataflow streams of Fig. 2
// (preprocess fans its embedding out to every gate CU; the gate CUs each
// feed the hidden-state kernel), and the DDR-bank connectivity the paper's
// host program would pass to v++ as sp= options. The result feeds drc.Check
// — the pre-deployment gate used by core.Deploy, csdbuild -drc, and
// `csdlint drc` — without scheduling a single loop.
func DesignFor(model lstm.Config, cfg Config) (drc.Design, error) {
	cfg.defaults()
	specs, err := Specs(model, cfg)
	if err != nil {
		return drc.Design{}, err
	}
	return drc.Design{
		Part:    cfg.Part,
		Kernels: specs,
		Streams: []drc.Stream{
			// §III-C: preprocess writes one private embedding copy per gate
			// CU; each gate CU writes one gate vector to the hidden-state
			// kernel's single CU.
			{From: KernelPreprocess, To: KernelGates, FanOut: cfg.GateCUs},
			{From: KernelGates, To: KernelHiddenState, FanOut: 1},
		},
		Connectivity: connectivityFor(specs, cfg.Part),
	}, nil
}

// connectivityFor derives the paper's DDR-bank map (§III-C: parameters in
// bank 0, the sequence staging buffer in bank 1 when the part has one):
// each kernel's per-CU AXI masters reach the parameter bank and the
// sequence bank.
func connectivityFor(specs []fpga.KernelSpec, part fpga.Part) map[string][]int {
	banks := part.DDRBanks
	if banks <= 0 {
		banks = 1
	}
	seqBank := 0
	if banks > 1 {
		seqBank = 1
	}
	m := make(map[string][]int, len(specs))
	for _, s := range specs {
		switch s.Name {
		case KernelPreprocess:
			// Reads the embedding table (bank 0) and the staged sequence
			// (bank 1), writes the x copies back to bank 0.
			m[s.Name] = []int{0, seqBank}
		case KernelGates:
			// Each CU reads weights from bank 0 and x/h from the sequence
			// bank.
			m[s.Name] = []int{0, seqBank}
		case KernelHiddenState:
			// Gathers the four gate vectors (bank 0) and writes h copies
			// and the classification result (sequence bank).
			m[s.Name] = []int{0, seqBank}
		default:
			m[s.Name] = []int{0}
		}
	}
	return m
}
