package kernels

// Numeric observability for the fixed-point datapath.
//
// stepFixed runs on the unchecked fixed ops — plain int64 arithmetic that
// wraps silently, like the FPGA's fixed-width DSP cascade. With a probe
// installed the pipeline switches to stepFixedProbed, a shadow datapath built
// on the overflow-checked variants in internal/fixed: every intermediate is
// bit-identical to the fast path (the checked ops return the same wrapped
// value on overflow), but each one is reported to the probe under the
// internal/absint stage name it corresponds to, together with any wrap the
// checked op detected. FuzzIntervalSoundness in internal/absint uses this to
// cross-check the static interval analysis against concrete executions.

import (
	"github.com/kfrida1/csdinf/internal/absint"
	"github.com/kfrida1/csdinf/internal/activation"
	"github.com/kfrida1/csdinf/internal/fixed"
	"github.com/kfrida1/csdinf/internal/lstm"
)

// NumericProbe observes one fixed-point intermediate of the LevelFixedPoint
// datapath. stage is an internal/absint stage name (absint.StageEmbed,
// absint.GateStage(...), ...), v is exactly the value the production datapath
// computes at that point, and wrapErr is non-nil when the true mathematical
// result escaped int64 — in which case v is the wrapped value the hardware
// would carry onward.
type NumericProbe func(stage string, v fixed.Value, wrapErr error)

// SetNumericProbe installs probe on the pipeline; nil removes it. Only
// LevelFixedPoint consults the probe — the float levels have no fixed-width
// intermediates to watch, and LevelMixed's narrow path is bounded by
// construction (8-bit operands cannot overflow a 64-bit accumulator at the
// kernel shapes New accepts).
func (p *Pipeline) SetNumericProbe(probe NumericProbe) { p.probe = probe }

// stepFixedProbed is stepFixed rebuilt on the checked shadow ops. The
// arithmetic is intentionally identical — Dot is DotRaw + FromRaw, Mul is
// MulRaw + FromRaw, Add is AddChecked's wrapped sum — so the Result returned
// here always equals the fast path's (TestProbedPathMatchesFast pins this).
func (p *Pipeline) stepFixedProbed(item int) (Result, bool) {
	cfg := p.cfg
	probe := p.probe
	x := p.qEmbed[item]
	for _, v := range x {
		probe(absint.StageEmbed, v, nil)
	}

	var gates [4][]fixed.Value
	for g := 0; g < 4; g++ {
		name := lstm.GateName(g + 1)
		out := make([]fixed.Value, cfg.HiddenSize)
		for r := 0; r < cfg.HiddenSize; r++ {
			wxRaw, wxErr := p.arith.DotRaw(p.qWx[g][r], x)
			probe(absint.GateStage(name, absint.StageWxAcc), wxRaw, wxErr)
			whRaw, whErr := p.arith.DotRaw(p.qWh[g][r], p.hQ)
			probe(absint.GateStage(name, absint.StageWhAcc), whRaw, whErr)
			pre, preErr := p.arith.AddChecked(p.arith.FromRaw(wxRaw), p.arith.FromRaw(whRaw))
			pre, bErr := p.arith.AddChecked(pre, p.qB[g][r])
			if preErr == nil {
				preErr = bErr
			}
			probe(absint.GateStage(name, absint.StagePreact), pre, preErr)
			if name == lstm.GateCandidate {
				out[r] = p.fact.Softsign(pre)
			} else {
				out[r] = p.fact.Sigmoid(pre)
			}
			probe(absint.GateStage(name, absint.StageGateOut), out[r], nil)
		}
		gates[g] = out
	}

	i, f, o, cand := gates[0], gates[1], gates[2], gates[3]
	for k := 0; k < cfg.HiddenSize; k++ {
		fcRaw, fcErr := p.arith.MulRaw(f[k], p.cQ[k])
		probe(absint.StageCellForgetRaw, fcRaw, fcErr)
		icRaw, icErr := p.arith.MulRaw(i[k], cand[k])
		probe(absint.StageCellInputRaw, icRaw, icErr)
		cell, cellErr := p.arith.AddChecked(p.arith.FromRaw(fcRaw), p.arith.FromRaw(icRaw))
		probe(absint.StageCellState, cell, cellErr)
		p.cQ[k] = cell
		act := p.fact.Softsign(cell)
		probe(absint.StageCellAct, act, nil)
		oRaw, oErr := p.arith.MulRaw(o[k], act)
		probe(absint.StageHiddenRaw, oRaw, oErr)
		p.hQ[k] = p.arith.FromRaw(oRaw)
		probe(absint.StageHiddenState, p.hQ[k], nil)
	}
	p.counter++
	if p.counter < p.seqLen {
		return Result{}, false
	}
	fcAcc, accErr := p.arith.DotRaw(p.qFCW, p.hQ)
	probe(absint.StageFCAcc, fcAcc, accErr)
	logit, logitErr := p.arith.AddChecked(p.arith.FromRaw(fcAcc), p.qFCB)
	probe(absint.StageLogit, logit, logitErr)
	fl := p.arith.ToFloat(logit)
	return Result{Ransomware: logit >= 0, Probability: activation.SigmoidF(fl), Logit: fl}, true
}
