package kernels

import (
	"testing"

	"github.com/kfrida1/csdinf/internal/absint"
	"github.com/kfrida1/csdinf/internal/drc"
	"github.com/kfrida1/csdinf/internal/fixed"
	"github.com/kfrida1/csdinf/internal/lstm"
)

// TestProbedPathMatchesFast pins the shadow-datapath contract: with a probe
// installed, every classification is bit-identical to the unprobed fast path,
// and on an in-range model no stage ever reports a wrap.
func TestProbedPathMatchesFast(t *testing.T) {
	m, err := lstm.NewModel(lstm.PaperConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Level: LevelFixedPoint, SeqLen: 7}
	fast, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probed, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	observations := 0
	stages := map[string]bool{}
	probed.SetNumericProbe(func(stage string, v fixed.Value, wrapErr error) {
		observations++
		stages[stage] = true
		if wrapErr != nil {
			t.Errorf("stage %s wrapped on the paper model: %v", stage, wrapErr)
		}
	})

	seq := make([]int, cfg.SeqLen)
	for i := range seq {
		seq[i] = (i * 13) % m.Config().VocabSize
	}
	rf, cf, err := fast.Classify(seq)
	if err != nil {
		t.Fatal(err)
	}
	rp, cp, err := probed.Classify(seq)
	if err != nil {
		t.Fatal(err)
	}
	if rf != rp {
		t.Fatalf("probed result diverged from fast path: %+v vs %+v", rp, rf)
	}
	if cf != cp {
		t.Fatalf("probe changed the simulated latency: %d vs %d", cp, cf)
	}
	if observations == 0 {
		t.Fatal("probe never fired")
	}
	for _, want := range []string{
		absint.StageEmbed,
		absint.GateStage(lstm.GateInput, absint.StageWxAcc),
		absint.StageCellState,
		absint.StageFCAcc,
		absint.StageLogit,
	} {
		if !stages[want] {
			t.Errorf("probe never observed stage %s", want)
		}
	}

	// Removing the probe restores the fast path.
	probed.SetNumericProbe(nil)
	before := observations
	if _, _, err := probed.Classify(seq); err != nil {
		t.Fatal(err)
	}
	if observations != before {
		t.Error("probe fired after removal")
	}
}

// TestDesignForModelAttachesNumeric checks the weight-aware design carries
// the interval analysis exactly at the fixed-point level, and that the
// attached report survives a full drc.Check of the paper model.
func TestDesignForModelAttachesNumeric(t *testing.T) {
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DesignForModel(m, Config{Level: LevelFixedPoint})
	if err != nil {
		t.Fatal(err)
	}
	if d.Numeric == nil {
		t.Fatal("fixed-point design carries no numeric report")
	}
	if !d.Numeric.OverflowFree() {
		t.Fatal("paper model refuted at the default scale")
	}
	if rep := drc.Check(d); !rep.OK() {
		t.Fatalf("paper model design has error findings: %+v", rep.Findings)
	}

	for _, level := range []OptLevel{LevelVanilla, LevelII, LevelMixed} {
		d, err := DesignForModel(m, Config{Level: level})
		if err != nil {
			t.Fatalf("%s: %v", level, err)
		}
		if d.Numeric != nil {
			t.Errorf("%s design carries a numeric report", level)
		}
	}

	if _, err := DesignForModel(nil, Config{}); err == nil {
		t.Error("nil model accepted")
	}
}
