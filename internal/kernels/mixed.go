package kernels

// Mixed precision — the paper's §VI future direction, implemented here as
// an optional fourth configuration.
//
// The fully-unrolled fixed-point gate MACs need one DSP slice per multiply:
// 4·H·(O+H) = 5,120 DSPs for the paper model, which fits the Alveo U200 but
// not the SmartSSD's KU15P (1,968). Mixed precision quantizes the gate
// *inputs* (weights, embeddings, hidden state) to a narrow scale whose
// operands fit 8 bits, letting the synthesizer pack four multiplies into
// each DSP48E2 — 1,280 DSPs total — while the precision-sensitive cell
// path (Ct accumulation, softsign, FC head) stays at the full 10⁶ scale.
// That is exactly the paper's proposal: "performing operations in lower
// precision where high precision is not necessary, and in higher precision
// where greater accuracy is required".
//
// The price is quantization error in the gate pre-activations; the
// LevelMixed tests and the mixed-precision ablation quantify the accuracy
// cost against the DSP savings.

import (
	"github.com/kfrida1/csdinf/internal/activation"
	"github.com/kfrida1/csdinf/internal/fixed"
	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/hls"
	"github.com/kfrida1/csdinf/internal/lstm"
)

// NarrowScale is the low-precision scale for gate inputs: 10² keeps the
// scaled weights within 8 bits (|w| ≲ 1.27), enabling 4-per-DSP packing.
const NarrowScale = 100

// DSPPackFactor is how many narrow multiplies one DSP slice executes.
const DSPPackFactor = 4

// quantizeNarrow fills the pipeline's narrow-scale parameter copies.
func (p *Pipeline) quantizeNarrow() {
	m := p.model
	cfg := p.cfg
	p.nEmbed = make([][]fixed.Value, cfg.VocabSize)
	for i := range p.nEmbed {
		p.nEmbed[i] = p.narrow.QuantizeSlice(m.Embedding.Row(i))
	}
	for g := range m.Gates {
		p.nWx[g] = make([][]fixed.Value, cfg.HiddenSize)
		p.nWh[g] = make([][]fixed.Value, cfg.HiddenSize)
		for r := 0; r < cfg.HiddenSize; r++ {
			p.nWx[g][r] = p.narrow.QuantizeSlice(m.Gates[g].Wx.Row(r))
			p.nWh[g][r] = p.narrow.QuantizeSlice(m.Gates[g].Wh.Row(r))
		}
		// Biases join after the MAC array; keep them wide.
		p.qB[g] = p.arith.QuantizeSlice(m.Gates[g].B)
	}
	p.qFCW = p.arith.QuantizeSlice(m.FCW)
	p.qFCB = p.arith.FromFloat(m.FCB)
}

// stepMixed executes one item with narrow gate MACs and a wide cell path.
func (p *Pipeline) stepMixed(item int) (Result, bool) {
	cfg := p.cfg
	x := p.nEmbed[item]

	// h(t-1) is stored wide; requantize the copy handed to the gate CUs,
	// as the hardware's width converter does on the h_copy path.
	hNarrow := make([]fixed.Value, cfg.HiddenSize)
	for k, v := range p.hQ {
		hNarrow[k] = p.narrow.FromFloat(p.arith.ToFloat(v))
	}

	// Widen narrow-scale pre-activations to the wide scale. The wide scale
	// is an exact multiple of NarrowScale, so Rescale is the exact widening
	// multiply — but routed through the sanctioned conversion rather than a
	// raw scale-ratio product.
	widen := func(v fixed.Value) fixed.Value {
		return p.arith.Rescale(v, p.narrow)
	}

	var gates [4][]fixed.Value
	for g := 0; g < 4; g++ {
		out := make([]fixed.Value, cfg.HiddenSize)
		for r := 0; r < cfg.HiddenSize; r++ {
			pre := p.narrow.Dot(p.nWx[g][r], x)
			pre = p.narrow.Add(pre, p.narrow.Dot(p.nWh[g][r], hNarrow))
			wide := p.arith.Add(widen(pre), p.qB[g][r])
			if lstm.GateName(g+1) == lstm.GateCandidate {
				out[r] = p.fact.Softsign(wide)
			} else {
				out[r] = p.fact.Sigmoid(wide)
			}
		}
		gates[g] = out
	}

	i, f, o, cand := gates[0], gates[1], gates[2], gates[3]
	for k := 0; k < cfg.HiddenSize; k++ {
		p.cQ[k] = p.arith.Add(p.arith.Mul(f[k], p.cQ[k]), p.arith.Mul(i[k], cand[k]))
		p.hQ[k] = p.arith.Mul(o[k], p.fact.Softsign(p.cQ[k]))
	}
	p.counter++
	if p.counter < p.seqLen {
		return Result{}, false
	}
	logit := p.arith.Add(p.arith.Dot(p.qFCW, p.hQ), p.qFCB)
	fl := p.arith.ToFloat(logit)
	return Result{Ransomware: logit >= 0, Probability: activation.SigmoidF(fl), Logit: fl}, true
}

// mixedGatesSpec is gatesSpec at the mixed level: the MAC loop fully
// unrolls, but DSPPackFactor narrow multiplies share each DSP, quartering
// the DSP bill (4·H·(O+H)/4 = 1,280 total for the paper model — inside the
// KU15P's budget).
func mixedGatesSpec(cfg lstm.Config, gateCUs int) fpga.KernelSpec {
	h, o := cfg.HiddenSize, cfg.EmbedDim
	macs := h * (o + h)
	packed := (macs + DSPPackFactor - 1) / DSPPackFactor

	mac := hls.Loop{
		// One iteration per packed DSP: a 4-way SIMD multiply plus the
		// partial-sum adds.
		Name: "mac_packed", Trip: packed,
		Body:           []hls.Op{hls.IntMul, hls.IntAdd, hls.IntAdd, hls.IntAdd, hls.IntAdd},
		Pipeline:       true,
		Unroll:         packed,
		ArrayPartition: true,
	}
	return fpga.KernelSpec{
		Name:  KernelGates,
		CUs:   gateCUs,
		Loops: []hls.Loop{mac},
		Buffers: []hls.Buffer{
			// 8-bit weights: a quarter of the 32-bit words.
			{Name: "weights", Words: (macs + 3) / 4, PartitionComplete: true},
			{Name: "x_in", Words: (o + 3) / 4, PartitionComplete: true},
			{Name: "h_in", Words: (h + 3) / 4, PartitionComplete: true},
		},
	}
}
