// Package kernels implements the paper's five-kernel LSTM inference pipeline
// (Fig. 2) as it executes on the CSD's FPGA:
//
//   - kernel_preprocess consumes one item of a fully-formed sequence and
//     produces its embedding (the one-hot × M×O dot product), making four
//     copies so each gate compute unit owns private inputs (§III-C);
//   - four kernel_gates compute units run in parallel, one per gate
//     (i, f, o, C'), each computing act(Wx·x + Wh·h + b);
//   - kernel_hidden_state keeps the cell state entirely local (avoiding a
//     kernel-to-kernel transfer of Ct, §III-B), computes
//     Ct = f⊙C(t-1) + i⊙C' and h = o⊙act(Ct), maintains the static item
//     counter, and applies the fully-connected head when the counter reaches
//     the sequence length.
//
// The pipeline is simultaneously *functional* — it really computes the
// classification, bit-faithful to the paper's fixed-point arithmetic at the
// OptFixedPoint level — and *timed*: each kernel carries an HLS loop-nest
// descriptor whose schedule on the FPGA model yields per-item latencies.
// Optimization levels are cumulative, matching Fig. 3's presentation:
// LevelVanilla (kernel parallelization only) → LevelII (+ PIPELINE, UNROLL,
// ARRAY_PARTITION) → LevelFixedPoint (+ scaled-integer arithmetic).
package kernels

import (
	"errors"
	"fmt"

	"github.com/kfrida1/csdinf/internal/activation"
	"github.com/kfrida1/csdinf/internal/fixed"
	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/tensor"
)

// OptLevel selects the cumulative optimization level of Fig. 3.
type OptLevel int

// Optimization levels, cumulative left to right.
const (
	// LevelVanilla has only the kernel parallelization of §III-C: four gate
	// CUs plus dataflow between kernels. Floating-point arithmetic.
	LevelVanilla OptLevel = iota + 1
	// LevelII adds the initiation-interval optimizations of §III-D:
	// #pragma HLS PIPELINE II=1, UNROLL, and ARRAY_PARTITION complete.
	LevelII
	// LevelFixedPoint additionally converts all arithmetic to scale-10⁶
	// fixed point, freeing enough DSPs to fully unroll the gate MACs.
	LevelFixedPoint
	// LevelMixed implements the paper's §VI future direction: narrow
	// (8-bit, DSP-packed) gate MACs with a full-precision cell path. It
	// quarters the gate DSP bill so the design fits the SmartSSD's KU15P.
	// Not part of Fig. 3; see internal/kernels/mixed.go.
	LevelMixed
)

// String returns the level name used in Fig. 3.
func (l OptLevel) String() string {
	switch l {
	case LevelVanilla:
		return "Vanilla"
	case LevelII:
		return "II"
	case LevelFixedPoint:
		return "Fixed-point"
	case LevelMixed:
		return "Mixed-precision"
	default:
		return fmt.Sprintf("OptLevel(%d)", int(l))
	}
}

// Levels lists the optimization levels in Fig. 3 order of application.
var Levels = []OptLevel{LevelVanilla, LevelII, LevelFixedPoint}

// Kernel names as they appear in the paper.
const (
	KernelPreprocess  = "kernel_preprocess"
	KernelGates       = "kernel_gates"
	KernelHiddenState = "kernel_hidden_state"
)

// GateCUs is the number of parallel kernel_gates compute units (§III-C).
const GateCUs = 4

// Pipeline is a deployed five-kernel inference pipeline: quantized (or
// float) weights, FPGA placement, and per-item recurrent state.
//
// A Pipeline is not safe for concurrent use; its recurrent state advances
// with every ProcessItem call.
type Pipeline struct {
	cfg   lstm.Config
	level OptLevel
	model *lstm.Model

	dev    *fpga.Device
	placed map[string]*fpga.PlacedKernel

	arith   fixed.Arith
	narrow  fixed.Arith
	fact    activation.Fixed
	gateCUs int
	probe   NumericProbe

	// Quantized parameters (LevelFixedPoint only).
	qEmbed [][]fixed.Value    // M rows of O values
	qWx    [4][][]fixed.Value // per gate: H rows of O values
	qWh    [4][][]fixed.Value // per gate: H rows of H values
	qB     [4][]fixed.Value
	qFCW   []fixed.Value
	qFCB   fixed.Value

	// Narrow-scale parameters (LevelMixed only; see mixed.go).
	nEmbed [][]fixed.Value
	nWx    [4][][]fixed.Value
	nWh    [4][][]fixed.Value

	// Recurrent state.
	seqLen  int
	counter int
	hF, cF  tensor.Vector // float state (Vanilla / II)
	hQ, cQ  []fixed.Value // fixed state (FixedPoint)
}

// Config describes pipeline deployment.
type Config struct {
	// Level is the optimization level (default LevelFixedPoint, the paper's
	// production configuration).
	Level OptLevel
	// Part is the FPGA part (default fpga.AlveoU200, the paper's platform).
	Part fpga.Part
	// SeqLen is the pre-established sequence length consumed per
	// classification (default 100, the paper's window).
	SeqLen int
	// Scale is the fixed-point scale (default fixed.DefaultScale = 10⁶).
	Scale int64
	// GateCUs overrides the number of kernel_gates compute units (default
	// 4, the paper's §III-C parallelization). With fewer CUs the four gate
	// computations serialize onto the available units, which the gate-CU
	// ablation quantifies. Must divide 4.
	GateCUs int
	// Streaming connects the kernels with on-chip AXI4-Stream FIFOs
	// instead of global-memory buffers — the additional acceleration the
	// paper notes "can be easily ported to the kernel implementation ...
	// if the FPGA supports it" (§III-C). It removes the AXI burst
	// prologues and the explicit x/h copy loops. Requires LevelII or
	// above (the vanilla configuration predates the pragma work).
	Streaming bool
}

func (c *Config) defaults() {
	if c.Level == 0 {
		c.Level = LevelFixedPoint
	}
	if c.Part.Name == "" {
		c.Part = fpga.AlveoU200
	}
	if c.SeqLen == 0 {
		c.SeqLen = 100
	}
	if c.Scale == 0 {
		c.Scale = fixed.DefaultScale
	}
	if c.GateCUs == 0 {
		c.GateCUs = GateCUs
	}
}

// New deploys the model onto a fresh FPGA device at the given optimization
// level, quantizing weights when the level uses fixed point. It fails if the
// scheduled kernels do not fit the part's fabric — which is exactly what
// happens when LevelFixedPoint's fully-unrolled gate MACs are placed on a
// part smaller than the paper's U200.
func New(m *lstm.Model, cfg Config) (*Pipeline, error) {
	if m == nil {
		return nil, errors.New("kernels: nil model")
	}
	cfg.defaults()
	switch cfg.Level {
	case LevelVanilla, LevelII, LevelFixedPoint, LevelMixed:
	default:
		return nil, fmt.Errorf("kernels: unknown optimization level %d", int(cfg.Level))
	}
	if cfg.GateCUs < 0 || 4%cfg.GateCUs != 0 {
		return nil, fmt.Errorf("kernels: gate CU count %d must divide 4", cfg.GateCUs)
	}
	if cfg.Streaming && cfg.Level < LevelII {
		return nil, fmt.Errorf("kernels: streaming requires level II or above, got %s", cfg.Level)
	}
	if cfg.SeqLen <= 0 {
		return nil, fmt.Errorf("kernels: sequence length must be positive, got %d", cfg.SeqLen)
	}
	arith, err := fixed.New(cfg.Scale)
	if err != nil {
		return nil, fmt.Errorf("kernels: %w", err)
	}
	narrow, err := fixed.New(NarrowScale)
	if err != nil {
		return nil, fmt.Errorf("kernels: %w", err)
	}

	dev, err := fpga.NewDevice(cfg.Part)
	if err != nil {
		return nil, fmt.Errorf("kernels: %w", err)
	}
	p := &Pipeline{
		cfg:     m.Config(),
		level:   cfg.Level,
		model:   m,
		dev:     dev,
		placed:  make(map[string]*fpga.PlacedKernel, 3),
		arith:   arith,
		narrow:  narrow,
		fact:    activation.NewFixed(arith),
		seqLen:  cfg.SeqLen,
		gateCUs: cfg.GateCUs,
	}

	for _, spec := range kernelSpecs(p.cfg, cfg.Level, cfg.GateCUs, cfg.Streaming) {
		pk, err := dev.Place(spec)
		if err != nil {
			return nil, fmt.Errorf("kernels: place %s at level %s: %w", spec.Name, cfg.Level, err)
		}
		p.placed[spec.Name] = pk
	}

	switch cfg.Level {
	case LevelFixedPoint:
		p.quantize()
	case LevelMixed:
		p.quantizeNarrow()
	}
	p.Reset()
	return p, nil
}

// quantize converts all model parameters to fixed point, the host-side
// scaling step of §III-D ("we multiply the floating-point values of weights,
// biases, and embeddings by this factor before the host initialization").
func (p *Pipeline) quantize() {
	m := p.model
	cfg := p.cfg
	p.qEmbed = make([][]fixed.Value, cfg.VocabSize)
	for i := range p.qEmbed {
		p.qEmbed[i] = p.arith.QuantizeSlice(m.Embedding.Row(i))
	}
	for g := range m.Gates {
		p.qWx[g] = make([][]fixed.Value, cfg.HiddenSize)
		p.qWh[g] = make([][]fixed.Value, cfg.HiddenSize)
		for r := 0; r < cfg.HiddenSize; r++ {
			p.qWx[g][r] = p.arith.QuantizeSlice(m.Gates[g].Wx.Row(r))
			p.qWh[g][r] = p.arith.QuantizeSlice(m.Gates[g].Wh.Row(r))
		}
		p.qB[g] = p.arith.QuantizeSlice(m.Gates[g].B)
	}
	p.qFCW = p.arith.QuantizeSlice(m.FCW)
	p.qFCB = p.arith.FromFloat(m.FCB)
}

// Reset clears the recurrent state and item counter for a new sequence.
func (p *Pipeline) Reset() {
	p.counter = 0
	if p.level >= LevelFixedPoint {
		p.hQ = make([]fixed.Value, p.cfg.HiddenSize)
		p.cQ = make([]fixed.Value, p.cfg.HiddenSize)
	} else {
		p.hF = tensor.NewVector(p.cfg.HiddenSize)
		p.cF = tensor.NewVector(p.cfg.HiddenSize)
	}
}

// Level returns the pipeline's optimization level.
func (p *Pipeline) Level() OptLevel { return p.level }

// Device returns the FPGA device the pipeline is placed on.
func (p *Pipeline) Device() *fpga.Device { return p.dev }

// Placed returns the placed kernel by name (nil if not placed), giving
// profilers access to the loop schedules behind the latency figures.
func (p *Pipeline) Placed(name string) *fpga.PlacedKernel { return p.placed[name] }

// GateCUs returns the number of kernel_gates compute units in this
// deployment (4 in the paper's configuration; fewer under the gate-CU
// ablation).
func (p *Pipeline) GateCUs() int { return p.gateCUs }

// SeqLen returns the pre-established sequence length.
func (p *Pipeline) SeqLen() int { return p.seqLen }

// Result is the classification produced once a full sequence has been
// consumed.
type Result struct {
	// Ransomware is the hard decision (logit >= 0).
	Ransomware bool
	// Probability is the sigmoid of the head logit.
	Probability float64
	// Logit is the raw head output.
	Logit float64
}

// ProcessItem advances the pipeline by one sequence item, mirroring the
// hardware dataflow: preprocess → four parallel gate CUs → hidden state.
// When the static counter reaches the sequence length, the FC head fires and
// a Result is returned with done = true; the state then resets for the next
// sequence, as the hardware counter does.
func (p *Pipeline) ProcessItem(item int) (res Result, done bool, err error) {
	if item < 0 || item >= p.cfg.VocabSize {
		return Result{}, false, fmt.Errorf("%w: item %d, vocab %d",
			lstm.ErrItemOutOfRange, item, p.cfg.VocabSize)
	}
	switch {
	case p.level == LevelMixed:
		res, done = p.stepMixed(item)
	case p.level == LevelFixedPoint:
		res, done = p.stepFixed(item)
	default:
		res, done, err = p.stepFloat(item)
		if err != nil {
			return Result{}, false, err
		}
	}
	if done {
		p.Reset()
	}
	return res, done, nil
}

// Classify resets the pipeline and consumes the whole sequence, which must
// be exactly SeqLen items (the paper's kernels consume "a fully-formed data
// sequence"). It returns the classification and the simulated FPGA cycles.
func (p *Pipeline) Classify(seq []int) (Result, int64, error) {
	if len(seq) != p.seqLen {
		return Result{}, 0, fmt.Errorf("kernels: sequence length %d, pipeline expects %d", len(seq), p.seqLen)
	}
	p.Reset()
	var last Result
	var done bool
	for t, item := range seq {
		var err error
		last, done, err = p.ProcessItem(item)
		if err != nil {
			return Result{}, 0, fmt.Errorf("kernels: item %d: %w", t, err)
		}
	}
	if !done {
		return Result{}, 0, errors.New("kernels: sequence ended before counter fired")
	}
	_, _, _, perItem := p.ItemCycles()
	return last, perItem * int64(p.seqLen), nil
}

// stepFloat executes one item in floating point (Vanilla and II levels).
// The arithmetic is identical to the offline model's forward pass; only the
// schedule differs between the two levels.
func (p *Pipeline) stepFloat(item int) (Result, bool, error) {
	cfg := p.cfg
	m := p.model

	// kernel_preprocess: embedding via one-hot dot product, copied 4×.
	x := tensor.NewVector(cfg.EmbedDim)
	if err := m.Embed(item, x); err != nil {
		return Result{}, false, err
	}

	cellAct, err := cfg.CellActivation.Func()
	if err != nil {
		return Result{}, false, err
	}

	// Four kernel_gates CUs in parallel, each with its own copies of x and
	// h(t-1).
	var gates [4]tensor.Vector
	for g := 0; g < 4; g++ {
		out := tensor.NewVector(cfg.HiddenSize)
		pre := tensor.NewVector(cfg.HiddenSize)
		tmp := tensor.NewVector(cfg.HiddenSize)
		m.Gates[g].Wx.MulVec(pre, x)
		m.Gates[g].Wh.MulVec(tmp, p.hF)
		pre.Add(tmp)
		pre.Add(m.Gates[g].B)
		if lstm.GateName(g+1) == lstm.GateCandidate {
			for i, v := range pre {
				out[i] = cellAct(v)
			}
		} else {
			for i, v := range pre {
				out[i] = activation.SigmoidF(v)
			}
		}
		gates[g] = out
	}

	// kernel_hidden_state: cell update, activation, output gate, counter.
	i, f, o, cand := gates[0], gates[1], gates[2], gates[3]
	for k := 0; k < cfg.HiddenSize; k++ {
		p.cF[k] = f[k]*p.cF[k] + i[k]*cand[k]
		p.hF[k] = o[k] * cellAct(p.cF[k])
	}
	p.counter++
	if p.counter < p.seqLen {
		return Result{}, false, nil
	}
	logit := m.Logit(p.hF)
	return Result{Ransomware: logit >= 0, Probability: activation.SigmoidF(logit), Logit: logit}, true, nil
}

// stepFixed executes one item entirely in scale-10⁶ fixed point — the
// arithmetic the FPGA DSP slices perform at LevelFixedPoint.
func (p *Pipeline) stepFixed(item int) (Result, bool) {
	if p.probe != nil {
		return p.stepFixedProbed(item)
	}
	cfg := p.cfg
	x := p.qEmbed[item]

	var gates [4][]fixed.Value
	for g := 0; g < 4; g++ {
		out := make([]fixed.Value, cfg.HiddenSize)
		for r := 0; r < cfg.HiddenSize; r++ {
			pre := p.arith.Dot(p.qWx[g][r], x)
			pre = p.arith.Add(pre, p.arith.Dot(p.qWh[g][r], p.hQ))
			pre = p.arith.Add(pre, p.qB[g][r])
			if lstm.GateName(g+1) == lstm.GateCandidate {
				out[r] = p.fact.Softsign(pre)
			} else {
				out[r] = p.fact.Sigmoid(pre)
			}
		}
		gates[g] = out
	}

	i, f, o, cand := gates[0], gates[1], gates[2], gates[3]
	for k := 0; k < cfg.HiddenSize; k++ {
		p.cQ[k] = p.arith.Add(p.arith.Mul(f[k], p.cQ[k]), p.arith.Mul(i[k], cand[k]))
		p.hQ[k] = p.arith.Mul(o[k], p.fact.Softsign(p.cQ[k]))
	}
	p.counter++
	if p.counter < p.seqLen {
		return Result{}, false
	}
	logit := p.arith.Add(p.arith.Dot(p.qFCW, p.hQ), p.qFCB)
	fl := p.arith.ToFloat(logit)
	return Result{Ransomware: logit >= 0, Probability: activation.SigmoidF(fl), Logit: fl}, true
}

// ItemCycles returns the simulated per-item latency of each kernel and the
// total. The four gate CUs run in parallel (§III-C), so the gates figure is
// the latency of one CU — the maximum across identical CUs. The total is
// the sum of the three stages, matching the paper's arithmetic for the
// "total execution time" of a forward pass (e.g. 0.8 + 0.00333 + 1.348 ≈
// 2.15133 µs at full optimization).
func (p *Pipeline) ItemCycles() (preprocess, gates, hidden, total int64) {
	preprocess = p.placed[KernelPreprocess].CyclesPerInvocation
	// With fewer than four CUs the four gate computations serialize onto
	// the available units in 4/gateCUs rounds (the gate-CU ablation).
	rounds := int64(GateCUs / p.gateCUs)
	gates = p.placed[KernelGates].CyclesPerInvocation * rounds
	hidden = p.placed[KernelHiddenState].CyclesPerInvocation
	return preprocess, gates, hidden, preprocess + gates + hidden
}

// KernelMicros returns per-kernel and total per-item latency in
// microseconds, the unit of Fig. 3.
func (p *Pipeline) KernelMicros() (preprocess, gates, hidden, total float64) {
	pc, gc, hc, tc := p.ItemCycles()
	return p.dev.Microseconds(pc), p.dev.Microseconds(gc), p.dev.Microseconds(hc), p.dev.Microseconds(tc)
}

// PipelinedItemCycles returns the steady-state per-item cycles when the
// dataflow overlap of §III-C is credited: kernel_preprocess works on item
// t+1 while the gate CUs and kernel_hidden_state process item t, so the
// pipeline initiation interval is max(preprocess, gates+hidden) rather than
// the sum. The paper quotes the sum; this figure quantifies the additional
// headroom (used by the dataflow ablation).
func (p *Pipeline) PipelinedItemCycles() int64 {
	pc, gc, hc, _ := p.ItemCycles()
	rest := gc + hc
	if pc > rest {
		return pc
	}
	return rest
}
