package kernels

import (
	"testing"

	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/lstm"
)

func TestDesignForShape(t *testing.T) {
	d, err := DesignFor(lstm.PaperConfig(), Config{Level: LevelFixedPoint})
	if err != nil {
		t.Fatal(err)
	}
	if d.Part.Name != fpga.AlveoU200.Name {
		t.Fatalf("default part = %s, want U200", d.Part.Name)
	}
	if len(d.Kernels) != 3 {
		t.Fatalf("kernels = %d, want 3", len(d.Kernels))
	}
	if len(d.Streams) != 2 || d.Streams[0].FanOut != GateCUs {
		t.Fatalf("streams = %+v, want preprocess→gates fan-out %d", d.Streams, GateCUs)
	}
	for _, k := range d.Kernels {
		banks, ok := d.Connectivity[k.Name]
		if !ok || len(banks) == 0 {
			t.Fatalf("kernel %s has no connectivity entry", k.Name)
		}
		for _, b := range banks {
			if b < 0 || b >= d.Part.DDRBanks {
				t.Fatalf("kernel %s bound to bank %d outside part range", k.Name, b)
			}
		}
	}
}

func TestDesignForInvalidConfig(t *testing.T) {
	if _, err := DesignFor(lstm.PaperConfig(), Config{Level: OptLevel(99)}); err == nil {
		t.Fatal("invalid level should be rejected")
	}
	if _, err := DesignFor(lstm.Config{}, Config{}); err == nil {
		t.Fatal("invalid model config should be rejected")
	}
}

// TestDesignForKU15PSingleBank pins the connectivity derivation on a
// single-bank part: everything must collapse onto bank 0.
func TestDesignForKU15PSingleBank(t *testing.T) {
	d, err := DesignFor(lstm.PaperConfig(), Config{Level: LevelMixed, Part: fpga.KU15P})
	if err != nil {
		t.Fatal(err)
	}
	for name, banks := range d.Connectivity {
		for _, b := range banks {
			if b != 0 {
				t.Fatalf("kernel %s bound to bank %d on a single-bank part", name, b)
			}
		}
	}
}
