package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one metric dimension (e.g. device="2").
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates the metric types a Registry holds.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// series is one labeled instance within a family.
type series struct {
	labels  []Label // sorted by key
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name, help string
	kind       Kind
	series     map[string]*series // by canonical label key
}

// Registry is a labeled metric namespace. Metric accessors are
// get-or-create: the same (name, labels) always returns the same instance,
// so instrumentation sites need no registration ceremony. A nil *Registry
// is valid everywhere and hands out live, unregistered metrics — the
// disabled-telemetry path costs one allocation at construction time and
// nothing per observation.
//
// Registry methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter with the given name and labels, creating it
// on first use. It panics on a name/label syntax error or if the name is
// already registered as a different kind — both are programming errors at
// instrumentation sites, not runtime conditions.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	return r.lookup(name, help, KindCounter, nil, labels).counter
}

// Gauge returns the gauge with the given name and labels, creating it on
// first use (see Counter for the conflict rules).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	return r.lookup(name, help, KindGauge, nil, labels).gauge
}

// Histogram returns the histogram with the given name and labels, creating
// it on first use with the given bucket layout (zero Buckets: default
// latency buckets). The layout of an existing series wins; a second caller
// cannot re-bucket a live histogram.
func (r *Registry) Histogram(name, help string, buckets Buckets, labels ...Label) *Histogram {
	if r == nil {
		return NewHistogram(buckets)
	}
	return r.lookup(name, help, KindHistogram, &buckets, labels).hist
}

func (r *Registry) lookup(name, help string, kind Kind, buckets *Buckets, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	for i, l := range sorted {
		if !validName(l.Key) {
			panic(fmt.Sprintf("telemetry: metric %s: invalid label key %q", name, l.Key))
		}
		if i > 0 && sorted[i-1].Key == l.Key {
			panic(fmt.Sprintf("telemetry: metric %s: duplicate label key %q", name, l.Key))
		}
	}
	key := labelKey(sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s already registered as %s, requested %s",
			name, f.kind, kind))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: sorted}
		switch kind {
		case KindCounter:
			s.counter = &Counter{}
		case KindGauge:
			s.gauge = &Gauge{}
		case KindHistogram:
			s.hist = NewHistogram(*buckets)
		}
		f.series[key] = s
	}
	return s
}

// validName reports whether s is a legal Prometheus metric or label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// labelKey canonicalizes sorted labels into a map key.
func labelKey(sorted []Label) string {
	if len(sorted) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range sorted {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(0)
	}
	return b.String()
}

// Metric is one series in a registry snapshot.
type Metric struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Help   string  `json:"help,omitempty"`
	Labels []Label `json:"labels,omitempty"`
	// Value is the counter or gauge value; zero for histograms.
	Value int64 `json:"value,omitempty"`
	// Histogram is set for histogram series.
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot reads every series, sorted by name then label set — the stable
// order shared by all exposition formats.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type flat struct {
		f *family
		s []*series
	}
	flats := make([]flat, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ss := make([]*series, 0, len(keys))
		for _, k := range keys {
			ss = append(ss, f.series[k])
		}
		flats = append(flats, flat{f: f, s: ss})
	}
	r.mu.Unlock()

	// Read metric values outside the registry lock: value reads are atomic
	// and histogram snapshots can be comparatively slow.
	var out []Metric
	for _, fl := range flats {
		for _, s := range fl.s {
			m := Metric{Name: fl.f.name, Kind: fl.f.kind.String(), Help: fl.f.help, Labels: s.labels}
			switch fl.f.kind {
			case KindCounter:
				m.Value = s.counter.Value()
			case KindGauge:
				m.Value = s.gauge.Value()
			case KindHistogram:
				snap := s.hist.Snapshot()
				m.Histogram = &snap
			}
			out = append(out, m)
		}
	}
	return out
}
