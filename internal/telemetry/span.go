package telemetry

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Canonical pipeline phase names, in request order: time waiting in a
// device queue, SSD→FPGA data movement, FPGA kernel execution, and the
// detector's verdict logic.
const (
	PhaseQueue    = "queue"
	PhaseTransfer = "transfer"
	PhaseCompute  = "compute"
	PhaseVerdict  = "verdict"
)

// Phase is one recorded stage of a request's pipeline.
type Phase struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
}

// Span records the pipeline phases of one request as it descends the stack:
// the detector (or caller) creates it and stashes it in the context, the
// scheduler records queue wait, the engine records transfer and compute,
// and the detector closes it with the verdict. Each stage hands the request
// to the next through a channel or call, so Span needs no lock — it is NOT
// safe for truly concurrent writers, matching the one-stage-at-a-time life
// of a request.
type Span struct {
	// Name identifies the request kind (e.g. "window", "stored-scan").
	Name string `json:"name"`
	// ID is the trace correlation ID shared with the request's timeline
	// events when tracing is on (internal/trace job ID); 0 otherwise.
	ID int64 `json:"id,omitempty"`
	// Device is the serving device that executed the request, stamped by
	// the scheduler at dispatch (its device index as a string); empty when
	// the request never went through a scheduler.
	Device string `json:"device,omitempty"`
	// Phases are the recorded stages in arrival order. Queue wait is wall
	// time; transfer and compute are simulated device time (see the package
	// comment).
	Phases []Phase `json:"phases"`
}

// Record appends one phase.
func (s *Span) Record(phase string, d time.Duration) {
	s.Phases = append(s.Phases, Phase{Name: phase, Duration: d})
}

// Total sums all recorded phases.
func (s *Span) Total() time.Duration {
	var t time.Duration
	for _, p := range s.Phases {
		t += p.Duration
	}
	return t
}

// String renders the span on one line: "window: queue=1.2µs transfer=39µs
// compute=215µs verdict=90ns (total 255µs)".
func (s *Span) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	if s.ID != 0 {
		fmt.Fprintf(&b, "#%d", s.ID)
	}
	b.WriteString(":")
	for _, p := range s.Phases {
		fmt.Fprintf(&b, " %s=%s", p.Name, p.Duration)
	}
	fmt.Fprintf(&b, " (total %s)", s.Total())
	return b.String()
}

type spanCtxKey struct{}

// WithSpan returns a context carrying the span, so lower layers (scheduler,
// engine) can record their phases into it without the Inferencer interface
// knowing about telemetry.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom returns the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// SpanLog retains the most recent completed spans in a fixed ring — enough
// to answer "what did the last requests spend their time on" without
// unbounded memory. A nil *SpanLog ignores Add, so callers can thread an
// optional log without branching.
type SpanLog struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	total int64
}

// NewSpanLog builds a log retaining the last capacity spans (<=0: 128).
func NewSpanLog(capacity int) *SpanLog {
	if capacity <= 0 {
		capacity = 128
	}
	return &SpanLog{buf: make([]Span, 0, capacity)}
}

// Add appends a completed span, evicting the oldest when full.
func (l *SpanLog) Add(s Span) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, s)
		return
	}
	l.buf[l.next] = s
	l.next = (l.next + 1) % len(l.buf)
}

// Snapshot returns the retained spans, oldest first.
func (l *SpanLog) Snapshot() []Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Span, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// Total counts all spans ever added, including evicted ones.
func (l *SpanLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
