package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Unit names what a histogram's raw int64 observations measure; it controls
// how bucket bounds and sums are rendered in expositions.
type Unit uint8

const (
	// UnitSeconds: observations are nanoseconds, exposed as seconds (the
	// Prometheus convention for latency).
	UnitSeconds Unit = iota
	// UnitCount: observations are dimensionless counts (batch sizes).
	UnitCount
)

// String returns the unit name used in JSON snapshots.
func (u Unit) String() string {
	if u == UnitCount {
		return "count"
	}
	return "seconds"
}

// Buckets is a histogram bucket layout: sorted upper bounds in the raw unit
// plus the unit itself. The zero value selects DefaultLatencyBuckets.
type Buckets struct {
	unit   Unit
	bounds []int64
}

// DurationBuckets builds a latency bucket layout from ascending upper
// bounds.
func DurationBuckets(bounds ...time.Duration) Buckets {
	raw := make([]int64, len(bounds))
	for i, b := range bounds {
		raw[i] = int64(b)
	}
	return Buckets{unit: UnitSeconds, bounds: raw}
}

// CountBuckets builds a dimensionless bucket layout from ascending upper
// bounds.
func CountBuckets(bounds ...int64) Buckets {
	return Buckets{unit: UnitCount, bounds: append([]int64(nil), bounds...)}
}

// DefaultLatencyBuckets spans 1 µs – 5 s exponentially, covering everything
// from the sub-3 µs per-item FPGA latency of Table I up to host-side queue
// waits under saturation.
func DefaultLatencyBuckets() Buckets {
	return DurationBuckets(
		1*time.Microsecond, 2*time.Microsecond, 5*time.Microsecond,
		10*time.Microsecond, 20*time.Microsecond, 50*time.Microsecond,
		100*time.Microsecond, 200*time.Microsecond, 500*time.Microsecond,
		1*time.Millisecond, 2*time.Millisecond, 5*time.Millisecond,
		10*time.Millisecond, 20*time.Millisecond, 50*time.Millisecond,
		100*time.Millisecond, 200*time.Millisecond, 500*time.Millisecond,
		1*time.Second, 2*time.Second, 5*time.Second,
	)
}

// DefaultCountBuckets covers small integer distributions such as coalesced
// batch sizes (serve.Config.BatchMax defaults to 8).
func DefaultCountBuckets() Buckets {
	return CountBuckets(1, 2, 4, 8, 16, 32, 64, 128)
}

func (b Buckets) orDefault() Buckets {
	if len(b.bounds) == 0 {
		return DefaultLatencyBuckets()
	}
	return b
}

// Histogram is a lock-free fixed-bucket histogram. Writers only perform
// atomic adds (plus a CAS loop for min/max and the squared sum), so
// concurrent Observe calls never contend on a lock; Snapshot is a racy but
// monotonically consistent read, which is the standard trade for scrape-time
// metric collection.
type Histogram struct {
	unit   Unit
	bounds []int64        // ascending upper bounds; implicit +Inf overflow
	counts []atomic.Int64 // len(bounds)+1, last is the overflow bucket

	count atomic.Int64
	sum   atomic.Int64
	sumSq atomic.Uint64 // float64 bits; squared ns overflow int64 quickly
	min   atomic.Int64
	max   atomic.Int64
}

// NewHistogram builds a histogram with the given bucket layout (zero value:
// DefaultLatencyBuckets). Bounds must be ascending; NewHistogram sorts and
// deduplicates defensively.
func NewHistogram(b Buckets) *Histogram {
	b = b.orDefault()
	bounds := append([]int64(nil), b.bounds...)
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	dedup := bounds[:0]
	for i, v := range bounds {
		if i == 0 || v != bounds[i-1] {
			dedup = append(dedup, v)
		}
	}
	h := &Histogram{unit: b.unit, bounds: dedup, counts: make([]atomic.Int64, len(dedup)+1)}
	h.min.Store(math.MaxInt64)
	return h
}

// Unit returns the histogram's unit.
func (h *Histogram) Unit() Unit { return h.unit }

// ObserveDuration records one latency observation.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Observe records one raw observation (nanoseconds for UnitSeconds
// histograms). Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	addFloatBits(&h.sumSq, float64(v)*float64(v))
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// addFloatBits atomically adds delta to a float64 stored as uint64 bits.
func addFloatBits(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Bucket is one bucket of a snapshot: the count of observations at or below
// UpperBound (non-cumulative; the exposition layer cumulates).
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound in raw units;
	// math.MaxInt64 marks the overflow (+Inf) bucket.
	UpperBound int64 `json:"upper_bound"`
	// Count is this bucket's own observation count.
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time read of a histogram: streaming
// moments (mean ± 95% CI, the paper's Table I convention), bucket-estimated
// quantiles, and the raw buckets. All value fields are in the histogram's
// raw unit (nanoseconds for UnitSeconds).
type HistogramSnapshot struct {
	Unit  string `json:"unit"`
	Count int64  `json:"observations"`
	Sum   int64  `json:"sum"`
	Min   int64  `json:"min"`
	Max   int64  `json:"max"`
	// Mean, StdDev, CILow, CIHigh describe the sample: mean and a 95%
	// Student-t confidence interval of the mean. CILow == CIHigh == Mean
	// when Count < 2.
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	CILow  float64 `json:"ci95_low"`
	CIHigh float64 `json:"ci95_high"`
	// P50, P90, P99 are bucket-boundary quantile estimates with linear
	// interpolation inside the landing bucket (the histogram_quantile
	// estimator), clamped to the observed [Min, Max].
	P50     float64  `json:"p50"`
	P90     float64  `json:"p90"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot reads the histogram. Under concurrent writers the moments and
// buckets may disagree by in-flight observations; each field is itself
// consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Unit: h.unit.String(), Count: h.count.Load(), Sum: h.sum.Load()}
	s.Buckets = make([]Bucket, len(h.counts))
	var cum int64
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		cum += counts[i]
		bound := int64(math.MaxInt64)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		s.Buckets[i] = Bucket{UpperBound: bound, Count: counts[i]}
	}
	// Quantiles walk the bucket counts, not the (possibly newer) count
	// field, so the estimate is internally consistent.
	if cum == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	mean := float64(s.Sum) / float64(s.Count)
	s.Mean = mean
	if s.Count >= 2 {
		sumSq := math.Float64frombits(h.sumSq.Load())
		n := float64(s.Count)
		variance := (sumSq - n*mean*mean) / (n - 1)
		if variance < 0 { // floating-point cancellation on tight samples
			variance = 0
		}
		s.StdDev = math.Sqrt(variance)
		half := tCritical95(int(s.Count-1)) * s.StdDev / math.Sqrt(n)
		s.CILow, s.CIHigh = mean-half, mean+half
	} else {
		s.CILow, s.CIHigh = mean, mean
	}
	s.P50 = h.quantile(counts, cum, 0.50, s.Min, s.Max)
	s.P90 = h.quantile(counts, cum, 0.90, s.Min, s.Max)
	s.P99 = h.quantile(counts, cum, 0.99, s.Min, s.Max)
	return s
}

// quantile estimates the q-quantile from per-bucket counts by linear
// interpolation between the landing bucket's bounds, clamped to the
// observed extremes (the overflow bucket reports the observed max — there
// is no upper bound to interpolate toward).
func (h *Histogram) quantile(counts []int64, total int64, q float64, min, max int64) float64 {
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(h.bounds) { // overflow bucket
			return float64(max)
		}
		lower := float64(min)
		if i > 0 {
			lower = float64(h.bounds[i-1])
		}
		upper := float64(h.bounds[i])
		frac := (rank - (cum - float64(c))) / float64(c)
		v := lower + frac*(upper-lower)
		if v > float64(max) {
			v = float64(max)
		}
		if v < float64(min) {
			v = float64(min)
		}
		return v
	}
	return float64(max)
}

// tCritical95 returns the two-sided 95% Student-t critical value (the same
// convention internal/metrics uses for Table I, kept local so telemetry
// stays dependency-free).
func tCritical95(df int) float64 {
	table := []float64{
		0,
		12.706,
		4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	switch {
	case df <= 0:
		return math.NaN()
	case df < len(table):
		return table[df]
	case df < 60:
		return 2.00
	case df < 120:
		return 1.98
	default:
		return 1.96
	}
}
