package telemetry

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestPromLabelEscaping pins the exposition escaping rules: %q alone must
// produce single-escaped backslashes, quotes, and newlines in label values
// (a previous revision pre-escaped and then %q-escaped, doubling every
// backslash).
func TestPromLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("files_total", "", L("path", `C:\tmp\"x"`+"\n")).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `files_total{path="C:\\tmp\\\"x\"\n"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("exposition escaping:\n got: %s want line: %s", buf.String(), want)
	}
}

// TestPromHistogramCountMatchesInfBucket pins the exposition invariant the
// spec requires: _count equals the cumulative +Inf bucket (a previous
// revision rendered a separately-read atomic that could disagree under
// concurrent observers).
func TestPromHistogramCountMatchesInfBucket(t *testing.T) {
	r := goldenRegistry()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	inf := map[string]int64{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, `_bucket{le="+Inf"} `); i >= 0 {
			name := line[:strings.Index(line, "_bucket")]
			v, err := strconv.ParseInt(line[i+len(`_bucket{le="+Inf"} `):], 10, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			inf[name] = v
			continue
		}
		for name, v := range inf {
			if rest, ok := strings.CutPrefix(line, name+"_count "); ok {
				c, err := strconv.ParseInt(rest, 10, 64)
				if err != nil {
					t.Fatalf("parse %q: %v", line, err)
				}
				if c != v {
					t.Errorf("%s_count = %d, +Inf bucket = %d", name, c, v)
				}
			}
		}
	}
	if len(inf) != 2 {
		t.Fatalf("found %d +Inf buckets, want 2", len(inf))
	}
}
