package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, labeled samples, and for
// histograms the cumulative _bucket{le=...} series plus _sum and _count.
// UnitSeconds histogram bounds and sums are rendered in seconds, the
// Prometheus base unit for time.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var b strings.Builder
	lastName := ""
	for _, m := range snap {
		if m.Name != lastName {
			if m.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.Name, escapeHelp(m.Help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.Name, m.Kind)
			lastName = m.Name
		}
		switch {
		case m.Histogram != nil:
			writePromHistogram(&b, m)
		default:
			fmt.Fprintf(&b, "%s%s %d\n", m.Name, promLabels(m.Labels), m.Value)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writePromHistogram(b *strings.Builder, m Metric) {
	h := m.Histogram
	seconds := h.Unit == UnitSeconds.String()
	var cum int64
	for _, bk := range h.Buckets {
		cum += bk.Count
		le := "+Inf"
		if bk.UpperBound != math.MaxInt64 {
			le = promValue(bk.UpperBound, seconds)
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", m.Name, promLabelsLE(m.Labels, le), cum)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", m.Name, promLabels(m.Labels), promValue(h.Sum, seconds))
	// The spec requires _count == the +Inf bucket. Render the cumulative
	// bucket sum rather than the separately-read Count atomic: under
	// concurrent writers the two reads can straddle an observation, and the
	// buckets are what the exposition just claimed.
	fmt.Fprintf(b, "%s_count%s %d\n", m.Name, promLabels(m.Labels), cum)
}

// promValue renders a raw int64 observation, converting nanoseconds to
// seconds for time-unit histograms.
func promValue(v int64, seconds bool) string {
	if !seconds {
		return strconv.FormatInt(v, 10)
	}
	return strconv.FormatFloat(float64(v)/1e9, 'g', -1, 64)
}

// promLabels renders a label set. %q already produces the exposition
// format's escaping for label values (backslash, double quote, newline);
// pre-escaping as well would double every backslash.
func promLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// promLabelsLE renders a label set with the histogram le label appended.
func promLabelsLE(labels []Label, le string) string {
	parts := make([]string, 0, len(labels)+1)
	for _, l := range labels {
		parts = append(parts, fmt.Sprintf("%s=%q", l.Key, l.Value))
	}
	parts = append(parts, fmt.Sprintf("le=%q", le))
	return "{" + strings.Join(parts, ",") + "}"
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// WriteJSON writes the snapshot as an indented JSON document — the
// machine-readable twin of WritePrometheus, used by the /metrics.json
// endpoint and the BENCH_*.json emitters.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []Metric `json:"metrics"`
	}{Metrics: r.Snapshot()})
}

// WriteSummary writes a human-readable two-part table: scalar metrics, then
// histogram distributions reported as the paper reports Table I — count,
// mean ± 95% CI, and tail quantiles. It is the exit report printed by
// cmd/csddetect.
func (r *Registry) WriteSummary(w io.Writer) error {
	snap := r.Snapshot()
	var b strings.Builder
	var hists []Metric
	wroteScalar := false
	for _, m := range snap {
		if m.Histogram != nil {
			hists = append(hists, m)
			continue
		}
		if !wroteScalar {
			fmt.Fprintf(&b, "%-52s %14s\n", "metric", "value")
			wroteScalar = true
		}
		fmt.Fprintf(&b, "%-52s %14d\n", m.Name+promLabels(m.Labels), m.Value)
	}
	if len(hists) > 0 {
		if wroteScalar {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%-44s %8s %26s %10s %10s %10s\n",
			"histogram", "count", "mean ± 95% CI", "p50", "p90", "p99")
		for _, m := range hists {
			h := m.Histogram
			name := m.Name + promLabels(m.Labels)
			if h.Count == 0 {
				fmt.Fprintf(&b, "%-44s %8d %26s %10s %10s %10s\n", name, 0, "-", "-", "-", "-")
				continue
			}
			mean := fmt.Sprintf("%s ± %s",
				formatRaw(h.Mean, h.Unit), formatRaw((h.CIHigh-h.CILow)/2, h.Unit))
			fmt.Fprintf(&b, "%-44s %8d %26s %10s %10s %10s\n",
				name, h.Count, mean,
				formatRaw(h.P50, h.Unit), formatRaw(h.P90, h.Unit), formatRaw(h.P99, h.Unit))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatRaw renders a raw histogram value for humans: durations through
// time.Duration formatting, counts as plain numbers.
func formatRaw(v float64, unit string) string {
	if unit == UnitSeconds.String() {
		return time.Duration(v).Round(10 * time.Nanosecond).String()
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}
