package telemetry

import "math"

// MergeHistogramSnapshots folds several snapshots of same-layout histograms
// (identical units and bucket bounds — e.g. one labeled series per device)
// into one aggregate snapshot, recomputing the bucket-estimated quantiles
// over the combined distribution. This is how a fleet-wide p99 is read from
// per-device queue-wait histograms without a shared hot-path instrument.
//
// Snapshots with zero observations are skipped. The standard-deviation and
// confidence-interval fields are not recomputed (the per-shard squared sums
// are not exposed) and are left zero; Mean, quantiles, extremes, counts,
// and buckets are exact merges. Mixing layouts returns the zero snapshot.
func MergeHistogramSnapshots(snaps []HistogramSnapshot) HistogramSnapshot {
	var out HistogramSnapshot
	out.Min = math.MaxInt64
	for _, s := range snaps {
		if s.Count == 0 {
			continue
		}
		if out.Count == 0 {
			out.Unit = s.Unit
			out.Buckets = make([]Bucket, len(s.Buckets))
			copy(out.Buckets, s.Buckets)
		} else {
			if s.Unit != out.Unit || len(s.Buckets) != len(out.Buckets) {
				return HistogramSnapshot{}
			}
			for i := range s.Buckets {
				if s.Buckets[i].UpperBound != out.Buckets[i].UpperBound {
					return HistogramSnapshot{}
				}
				out.Buckets[i].Count += s.Buckets[i].Count
			}
		}
		out.Count += s.Count
		out.Sum += s.Sum
		if s.Min < out.Min {
			out.Min = s.Min
		}
		if s.Max > out.Max {
			out.Max = s.Max
		}
	}
	if out.Count == 0 {
		return HistogramSnapshot{}
	}
	out.Mean = float64(out.Sum) / float64(out.Count)
	out.CILow, out.CIHigh = out.Mean, out.Mean
	var total int64
	for _, b := range out.Buckets {
		total += b.Count
	}
	out.P50 = bucketQuantile(out.Buckets, total, 0.50, out.Min, out.Max)
	out.P90 = bucketQuantile(out.Buckets, total, 0.90, out.Min, out.Max)
	out.P99 = bucketQuantile(out.Buckets, total, 0.99, out.Min, out.Max)
	return out
}

// bucketQuantile is Histogram.quantile over snapshot buckets: linear
// interpolation inside the landing bucket, clamped to the observed
// extremes, with the overflow bucket reporting the observed max.
func bucketQuantile(buckets []Bucket, total int64, q float64, min, max int64) float64 {
	rank := q * float64(total)
	var cum float64
	for i, b := range buckets {
		cum += float64(b.Count)
		if cum < rank || b.Count == 0 {
			continue
		}
		if b.UpperBound == math.MaxInt64 { // overflow bucket
			return float64(max)
		}
		lower := float64(min)
		if i > 0 {
			lower = float64(buckets[i-1].UpperBound)
		}
		upper := float64(b.UpperBound)
		frac := (rank - (cum - float64(b.Count))) / float64(b.Count)
		v := lower + frac*(upper-lower)
		if v > float64(max) {
			v = float64(max)
		}
		if v < float64(min) {
			v = float64(min)
		}
		return v
	}
	return float64(max)
}
