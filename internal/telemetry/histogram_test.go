package telemetry

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantilesKnownDistribution(t *testing.T) {
	// Uniform over (0, 1ms] against 100 evenly spaced 10µs buckets: every
	// quantile estimate should land within one bucket width of the truth.
	var bounds []time.Duration
	for us := 10; us <= 1000; us += 10 {
		bounds = append(bounds, time.Duration(us)*time.Microsecond)
	}
	h := NewHistogram(DurationBuckets(bounds...))
	rng := rand.New(rand.NewSource(1))
	const n = 200_000
	for i := 0; i < n; i++ {
		h.ObserveDuration(time.Duration(rng.Int63n(int64(time.Millisecond))) + 1)
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	tol := float64(10 * time.Microsecond)
	for _, tc := range []struct {
		name string
		got  float64
		want float64
	}{
		{"p50", s.P50, float64(500 * time.Microsecond)},
		{"p90", s.P90, float64(900 * time.Microsecond)},
		{"p99", s.P99, float64(990 * time.Microsecond)},
	} {
		if math.Abs(tc.got-tc.want) > tol {
			t.Errorf("%s = %v, want %v ± %v",
				tc.name, time.Duration(tc.got), time.Duration(tc.want), time.Duration(tol))
		}
	}
	// Mean of U(0, 1ms) is 0.5ms; with 200k samples the CI is very tight.
	wantMean := float64(500 * time.Microsecond)
	if math.Abs(s.Mean-wantMean) > float64(5*time.Microsecond) {
		t.Errorf("mean = %v, want ≈ %v", time.Duration(s.Mean), time.Duration(wantMean))
	}
	if !(s.CILow < s.Mean && s.Mean < s.CIHigh) {
		t.Errorf("CI [%v, %v] does not bracket mean %v", s.CILow, s.CIHigh, s.Mean)
	}
	// 95% CI half-width for U(0,1ms): 1.96 * (1ms/√12) / √200000 ≈ 1.27µs.
	half := (s.CIHigh - s.CILow) / 2
	if half <= 0 || half > float64(3*time.Microsecond) {
		t.Errorf("CI half-width = %v, want ≈ 1.3µs", time.Duration(half))
	}
}

func TestHistogramMomentsExact(t *testing.T) {
	h := NewHistogram(CountBuckets(1, 2, 4, 8))
	for _, v := range []int64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Sum != 15 || s.Count != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("moments = %+v", s)
	}
	if s.Mean != 3 {
		t.Fatalf("mean = %v, want 3", s.Mean)
	}
	// Sample stddev of 1..5 is sqrt(2.5); CI uses t(4) = 2.776.
	wantSD := math.Sqrt(2.5)
	if math.Abs(s.StdDev-wantSD) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", s.StdDev, wantSD)
	}
	wantHalf := 2.776 * wantSD / math.Sqrt(5)
	if math.Abs((s.CIHigh-s.CILow)/2-wantHalf) > 1e-9 {
		t.Fatalf("CI half-width = %v, want %v", (s.CIHigh-s.CILow)/2, wantHalf)
	}
}

func TestHistogramEmptyAndSingle(t *testing.T) {
	h := NewHistogram(Buckets{})
	s := h.Snapshot()
	if s.Count != 0 || s.Mean != 0 || s.P99 != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	h.ObserveDuration(42 * time.Microsecond)
	s = h.Snapshot()
	if s.Count != 1 || s.CILow != s.Mean || s.CIHigh != s.Mean {
		t.Fatalf("single-sample snapshot = %+v", s)
	}
	if s.Min != int64(42*time.Microsecond) || s.Max != s.Min {
		t.Fatalf("single-sample extremes = %+v", s)
	}
}

// TestHistogramMinMaxSumSharpenQuantiles pins the Min/Max/Sum exposure that
// SLO latency objectives and MergeHistogramSnapshots rely on: quantile
// estimates clamp to the observed extremes, so a coarse bucket layout cannot
// report a p99 beyond any value actually seen (bucket-edge interpolation
// alone would).
func TestHistogramMinMaxSumSharpenQuantiles(t *testing.T) {
	// One enormous bucket: raw interpolation over [0, 1s] would put p50 near
	// 500ms; clamping to the observed [2ms, 3ms] keeps the estimate honest.
	h := NewHistogram(DurationBuckets(time.Second))
	for _, d := range []time.Duration{2 * time.Millisecond, 2500 * time.Microsecond, 3 * time.Millisecond} {
		h.ObserveDuration(d)
	}
	s := h.Snapshot()
	if s.Min != int64(2*time.Millisecond) || s.Max != int64(3*time.Millisecond) {
		t.Fatalf("extremes = [%v, %v], want [2ms, 3ms]",
			time.Duration(s.Min), time.Duration(s.Max))
	}
	if s.Sum != int64(7500*time.Microsecond) {
		t.Fatalf("sum = %v, want 7.5ms", time.Duration(s.Sum))
	}
	for _, tc := range []struct {
		name string
		got  float64
	}{
		{"p50", s.P50}, {"p90", s.P90}, {"p99", s.P99},
	} {
		if tc.got < float64(s.Min) || tc.got > float64(s.Max) {
			t.Errorf("%s = %v escapes observed [%v, %v]",
				tc.name, time.Duration(tc.got),
				time.Duration(s.Min), time.Duration(s.Max))
		}
	}
	// Mean comes from the exact Sum, not bucket edges.
	if want := float64(2500 * time.Microsecond); s.Mean != want {
		t.Errorf("mean = %v, want %v", time.Duration(s.Mean), time.Duration(want))
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram(DurationBuckets(time.Microsecond))
	h.ObserveDuration(10 * time.Second) // beyond every bound
	s := h.Snapshot()
	if got := s.Buckets[len(s.Buckets)-1].Count; got != 1 {
		t.Fatalf("overflow bucket count = %d, want 1", got)
	}
	if s.P99 != float64(10*time.Second) {
		t.Fatalf("overflow p99 = %v, want observed max", time.Duration(s.P99))
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := NewHistogram(Buckets{})
	h.Observe(-5)
	s := h.Snapshot()
	if s.Min != 0 || s.Sum != 0 || s.Count != 1 {
		t.Fatalf("negative observation snapshot = %+v", s)
	}
}

func TestHistogramConcurrentWriters(t *testing.T) {
	h := NewHistogram(Buckets{})
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.ObserveDuration(time.Duration(rng.Int63n(int64(time.Millisecond))))
			}
		}(int64(w))
	}
	// Concurrent snapshots must not trip the race detector or corrupt state.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = h.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var bucketSum int64
	for _, b := range s.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != workers*per {
		t.Fatalf("bucket sum = %d, want %d", bucketSum, workers*per)
	}
}
