package telemetry

import (
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestConcurrentCounters(t *testing.T) {
	var c Counter
	var g Gauge
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}

func TestNilRegistryHandsOutLiveMetrics(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("nil-registry counter not live")
	}
	g := r.Gauge("x", "")
	g.Set(3)
	if g.Value() != 3 {
		t.Fatal("nil-registry gauge not live")
	}
	h := r.Histogram("x_seconds", "", Buckets{})
	h.Observe(5)
	if h.Snapshot().Count != 1 {
		t.Fatal("nil-registry histogram not live")
	}
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", got)
	}
}
