package telemetry

import (
	"testing"
	"time"
)

// TestMergeEmptyAndAllZero pins the degenerate inputs: no snapshots, and
// snapshots that never observed anything, both merge to the zero snapshot so
// callers can range over fleets with idle shards without special-casing.
func TestMergeEmptyAndAllZero(t *testing.T) {
	if got := MergeHistogramSnapshots(nil); got.Count != 0 || got.Min != 0 {
		t.Fatalf("merge of nil = %+v, want zero snapshot", got)
	}
	idle := NewHistogram(Buckets{}).Snapshot()
	got := MergeHistogramSnapshots([]HistogramSnapshot{idle, idle})
	if got.Count != 0 || got.Min != 0 || got.Max != 0 || len(got.Buckets) != 0 {
		t.Fatalf("merge of idle shards = %+v, want zero snapshot", got)
	}
}

// TestMergeSingleSnapshotIsIdentity checks a one-element merge preserves the
// moments, extremes, and quantiles of its input.
func TestMergeSingleSnapshotIsIdentity(t *testing.T) {
	h := NewHistogram(Buckets{})
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond} {
		h.ObserveDuration(d)
	}
	s := h.Snapshot()
	m := MergeHistogramSnapshots([]HistogramSnapshot{s})
	if m.Count != s.Count || m.Sum != s.Sum || m.Min != s.Min || m.Max != s.Max {
		t.Fatalf("identity merge moments = %+v, want %+v", m, s)
	}
	if m.Mean != s.Mean || m.P50 != s.P50 || m.P99 != s.P99 {
		t.Fatalf("identity merge estimates = %+v, want %+v", m, s)
	}
	// Idle shards alongside a live one must not perturb the result.
	idle := NewHistogram(Buckets{}).Snapshot()
	m = MergeHistogramSnapshots([]HistogramSnapshot{idle, s, idle})
	if m.Count != s.Count || m.Min != s.Min || m.Max != s.Max {
		t.Fatalf("merge with idle shards = %+v, want %+v", m, s)
	}
}

// TestMergeMismatchedLayouts pins the refusal contract: snapshots whose units
// or bucket bounds differ cannot be merged meaningfully, so the result is the
// zero snapshot rather than a silently wrong aggregate.
func TestMergeMismatchedLayouts(t *testing.T) {
	lat := NewHistogram(Buckets{})
	lat.ObserveDuration(time.Millisecond)
	counts := NewHistogram(DefaultCountBuckets())
	counts.Observe(3)
	if got := MergeHistogramSnapshots([]HistogramSnapshot{lat.Snapshot(), counts.Snapshot()}); got.Count != 0 {
		t.Fatalf("unit mismatch merged: %+v", got)
	}

	coarse := NewHistogram(DurationBuckets(time.Millisecond, time.Second))
	coarse.ObserveDuration(time.Millisecond)
	if got := MergeHistogramSnapshots([]HistogramSnapshot{lat.Snapshot(), coarse.Snapshot()}); got.Count != 0 {
		t.Fatalf("bucket-count mismatch merged: %+v", got)
	}

	shifted := NewHistogram(DurationBuckets(2*time.Millisecond, time.Second))
	shifted.ObserveDuration(time.Millisecond)
	if got := MergeHistogramSnapshots([]HistogramSnapshot{coarse.Snapshot(), shifted.Snapshot()}); got.Count != 0 {
		t.Fatalf("bound mismatch merged: %+v", got)
	}
}

// TestMergeConservation pins the accounting across a sharded merge: counts,
// sums, per-bucket totals, and extremes all aggregate exactly, and the merged
// quantiles stay within the combined observed range.
func TestMergeConservation(t *testing.T) {
	mk := func(ds ...time.Duration) HistogramSnapshot {
		h := NewHistogram(Buckets{})
		for _, d := range ds {
			h.ObserveDuration(d)
		}
		return h.Snapshot()
	}
	shards := []HistogramSnapshot{
		mk(100*time.Microsecond, 200*time.Microsecond),
		mk(time.Millisecond),
		mk(4*time.Millisecond, 40*time.Microsecond, 7*time.Millisecond),
	}
	m := MergeHistogramSnapshots(shards)
	var count, sum, bucketed int64
	for _, s := range shards {
		count += s.Count
		sum += s.Sum
	}
	for _, b := range m.Buckets {
		bucketed += b.Count
	}
	if m.Count != count || bucketed != count {
		t.Fatalf("count = %d (bucketed %d), want %d", m.Count, bucketed, count)
	}
	if m.Sum != sum {
		t.Fatalf("sum = %d, want %d", m.Sum, sum)
	}
	if m.Min != int64(40*time.Microsecond) || m.Max != int64(7*time.Millisecond) {
		t.Fatalf("extremes = [%v, %v], want [40µs, 7ms]",
			time.Duration(m.Min), time.Duration(m.Max))
	}
	for _, q := range []float64{m.P50, m.P90, m.P99} {
		if q < float64(m.Min) || q > float64(m.Max) {
			t.Fatalf("quantile %v escapes [%v, %v]",
				time.Duration(q), time.Duration(m.Min), time.Duration(m.Max))
		}
	}
}
