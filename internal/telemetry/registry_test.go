package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds the fixed registry behind the exposition golden
// test: a labeled counter family, a gauge, and a histogram with known
// observations.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("jobs_total", "Jobs executed.", L("device", "0")).Add(3)
	r.Counter("jobs_total", "Jobs executed.", L("device", "1")).Add(5)
	r.Gauge("queue_depth", "Current backlog.", L("device", "0")).Set(2)
	h := r.Histogram("wait_seconds", "Queue wait.",
		DurationBuckets(time.Microsecond, time.Millisecond))
	h.ObserveDuration(500 * time.Nanosecond)
	h.ObserveDuration(2 * time.Millisecond)
	b := r.Histogram("batch_size", "Coalesced batch sizes.", CountBuckets(1, 2, 4))
	b.Observe(1)
	b.Observe(3)
	return r
}

func TestPrometheusExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestRegistryGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "", L("k", "v"))
	b := r.Counter("c_total", "", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("c_total", "", L("k", "w"))
	if a == other {
		t.Fatal("different label value returned the same counter")
	}
	// Label order must not matter.
	h1 := r.Histogram("h_seconds", "", Buckets{}, L("a", "1"), L("b", "2"))
	h2 := r.Histogram("h_seconds", "", Buckets{}, L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Fatal("label order changed series identity")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestRegistryBadNamePanics(t *testing.T) {
	for _, name := range []string{"", "9lives", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", name)
				}
			}()
			NewRegistry().Counter(name, "")
		}()
	}
}

func TestRegistryJSONSnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []Metric `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(doc.Metrics) != 5 {
		t.Fatalf("snapshot has %d series, want 5", len(doc.Metrics))
	}
	byName := map[string]Metric{}
	for _, m := range doc.Metrics {
		byName[m.Name+labelKey(m.Labels)] = m
	}
	if m := byName["jobs_total"+labelKey([]Label{L("device", "1")})]; m.Value != 5 {
		t.Errorf("jobs_total{device=1} = %d, want 5", m.Value)
	}
	wait, ok := byName["wait_seconds"]
	if !ok || wait.Histogram == nil {
		t.Fatal("wait_seconds histogram missing from JSON snapshot")
	}
	if wait.Histogram.Count != 2 || wait.Histogram.Unit != "seconds" {
		t.Errorf("wait_seconds snapshot = %+v", wait.Histogram)
	}
}

func TestWriteSummaryMentionsEverySeries(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`jobs_total{device="0"}`, `queue_depth{device="0"}`,
		"wait_seconds", "batch_size", "±",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("c_total", "", L("w", string(rune('a'+n%4)))).Inc()
				r.Histogram("h_seconds", "", Buckets{}).ObserveDuration(time.Microsecond)
				if j%100 == 0 {
					_ = r.Snapshot()
					var buf bytes.Buffer
					_ = r.WritePrometheus(&buf)
				}
			}
		}(i)
	}
	wg.Wait()
	var total int64
	for _, m := range r.Snapshot() {
		if m.Name == "c_total" {
			total += m.Value
		}
	}
	if total != 8*500 {
		t.Fatalf("counter total = %d, want %d", total, 8*500)
	}
}
