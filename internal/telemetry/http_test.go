package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHTTPHandlerEndpoints(t *testing.T) {
	r := goldenRegistry()
	spans := NewSpanLog(4)
	spans.Add(Span{Name: "window", Phases: []Phase{{Name: PhaseCompute, Duration: time.Microsecond}}})
	srv := httptest.NewServer(NewHTTPHandler(r, spans))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type %q", ct)
	}
	for _, want := range []string{
		"# TYPE jobs_total counter",
		`jobs_total{device="0"} 3`,
		`wait_seconds_bucket{le="+Inf"} 2`,
		"wait_seconds_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	resp, body = get("/metrics.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics.json status %d", resp.StatusCode)
	}
	var doc struct {
		Metrics []Metric `json:"metrics"`
		Spans   []Span   `json:"recent_spans"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/metrics.json invalid: %v", err)
	}
	if len(doc.Metrics) == 0 || len(doc.Spans) != 1 {
		t.Fatalf("/metrics.json: %d metrics, %d spans", len(doc.Metrics), len(doc.Spans))
	}

	resp, body = get("/spans.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/spans.json status %d", resp.StatusCode)
	}
	var spansDoc struct {
		Total    int64  `json:"total"`
		Retained int    `json:"retained"`
		Spans    []Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &spansDoc); err != nil {
		t.Fatalf("/spans.json invalid: %v", err)
	}
	if spansDoc.Total != 1 || spansDoc.Retained != 1 || len(spansDoc.Spans) != 1 {
		t.Fatalf("/spans.json: total %d retained %d spans %d",
			spansDoc.Total, spansDoc.Retained, len(spansDoc.Spans))
	}
	if spansDoc.Spans[0].Name != "window" {
		t.Errorf("/spans.json span = %+v", spansDoc.Spans[0])
	}

	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}
}
