package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHTTPHandlerEndpoints(t *testing.T) {
	r := goldenRegistry()
	spans := NewSpanLog(4)
	spans.Add(Span{Name: "window", Phases: []Phase{{Name: PhaseCompute, Duration: time.Microsecond}}})
	srv := httptest.NewServer(NewHTTPHandler(r, spans))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type %q", ct)
	}
	for _, want := range []string{
		"# TYPE jobs_total counter",
		`jobs_total{device="0"} 3`,
		`wait_seconds_bucket{le="+Inf"} 2`,
		"wait_seconds_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	resp, body = get("/metrics.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics.json status %d", resp.StatusCode)
	}
	var doc struct {
		Metrics []Metric `json:"metrics"`
		Spans   []Span   `json:"recent_spans"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/metrics.json invalid: %v", err)
	}
	if len(doc.Metrics) == 0 || len(doc.Spans) != 1 {
		t.Fatalf("/metrics.json: %d metrics, %d spans", len(doc.Metrics), len(doc.Spans))
	}

	resp, body = get("/spans.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/spans.json status %d", resp.StatusCode)
	}
	var spansDoc struct {
		Total    int64  `json:"total"`
		Retained int    `json:"retained"`
		Spans    []Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &spansDoc); err != nil {
		t.Fatalf("/spans.json invalid: %v", err)
	}
	if spansDoc.Total != 1 || spansDoc.Retained != 1 || len(spansDoc.Spans) != 1 {
		t.Fatalf("/spans.json: total %d retained %d spans %d",
			spansDoc.Total, spansDoc.Retained, len(spansDoc.Spans))
	}
	if spansDoc.Spans[0].Name != "window" {
		t.Errorf("/spans.json span = %+v", spansDoc.Spans[0])
	}

	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}
	var health struct {
		Status string `json:"status"`
		Build  struct {
			GoVersion string `json:"go_version"`
			Module    string `json:"module"`
		} `json:"build"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz invalid: %v", err)
	}
	if health.Status != "ok" {
		t.Errorf("/healthz status = %q", health.Status)
	}
	// The binary always knows the Go version it was built with; VCS fields
	// depend on how the test binary was produced and are not pinned.
	if !strings.HasPrefix(health.Build.GoVersion, "go") {
		t.Errorf("/healthz go_version = %q", health.Build.GoVersion)
	}
	if health.Build.Module != "github.com/kfrida1/csdinf" {
		t.Errorf("/healthz module = %q", health.Build.Module)
	}
	if health.UptimeSeconds <= 0 {
		t.Errorf("/healthz uptime_seconds = %v, want > 0", health.UptimeSeconds)
	}
}

// TestHTTPHandlerZeroSpans pins the empty-ring shape of /spans.json: a nil
// SpanLog (and one that never recorded) must serve "spans": [] — not null —
// so jq pipelines and dashboards can iterate unconditionally.
func TestHTTPHandlerZeroSpans(t *testing.T) {
	for _, tc := range []struct {
		name  string
		spans *SpanLog
	}{
		{"nil-log", nil},
		{"empty-log", NewSpanLog(4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(NewHTTPHandler(NewRegistry(), tc.spans))
			defer srv.Close()
			resp, err := http.Get(srv.URL + "/spans.json")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(body), `"spans": []`) {
				t.Fatalf("/spans.json empty ring not normalized:\n%s", body)
			}
			var doc struct {
				Total    int64  `json:"total"`
				Retained int    `json:"retained"`
				Spans    []Span `json:"spans"`
			}
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Fatal(err)
			}
			if doc.Total != 0 || doc.Retained != 0 || len(doc.Spans) != 0 {
				t.Fatalf("empty ring doc = %+v", doc)
			}
		})
	}
}

// TestHTTPHandlerZeroMetrics pins the zero-state shape of /metrics.json: a
// nil registry must serve "metrics": [] — not null — matching the
// normalization every other JSON endpoint in the stack guarantees.
func TestHTTPHandlerZeroMetrics(t *testing.T) {
	srv := httptest.NewServer(NewHTTPHandler(nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"metrics": []`) {
		t.Fatalf("/metrics.json zero state not normalized:\n%s", body)
	}
}

// TestSpanLogConcurrentWriters hammers one SpanLog from writers while
// /spans.json and Snapshot readers race them (run with -race). Retention
// must hold: the ring never exceeds capacity and Total counts every Add.
func TestSpanLogConcurrentWriters(t *testing.T) {
	const writers, adds, capacity = 8, 500, 32
	spans := NewSpanLog(capacity)
	srv := httptest.NewServer(NewHTTPHandler(NewRegistry(), spans))
	defer srv.Close()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				spans.Add(Span{
					Name: "window", ID: int64(w*adds + i + 1),
					Phases: []Phase{{Name: PhaseCompute, Duration: time.Microsecond}},
				})
			}
		}(w)
	}
	readErr := make(chan error, 1)
	go func() {
		defer close(readErr)
		for i := 0; i < 20; i++ {
			resp, err := http.Get(srv.URL + "/spans.json")
			if err != nil {
				readErr <- err
				return
			}
			var doc struct {
				Retained int    `json:"retained"`
				Spans    []Span `json:"spans"`
			}
			err = json.NewDecoder(resp.Body).Decode(&doc)
			resp.Body.Close()
			if err != nil {
				readErr <- err
				return
			}
			if doc.Retained > capacity || len(doc.Spans) > capacity {
				readErr <- fmt.Errorf("retention exceeded: retained %d of cap %d", doc.Retained, capacity)
				return
			}
		}
	}()
	wg.Wait()
	if err := <-readErr; err != nil {
		t.Fatal(err)
	}
	if got := spans.Total(); got != writers*adds {
		t.Fatalf("Total = %d, want %d", got, writers*adds)
	}
	if got := len(spans.Snapshot()); got != capacity {
		t.Fatalf("retained %d spans, want %d", got, capacity)
	}
}

// TestHealthzDegraded pins the honest-degradation contract: with a Health
// hook reporting not-ready, plain /healthz stays 200 (the process is alive)
// but reports the degraded status, while /healthz?ready=1 answers 503 so
// readiness probes can gate on serving capacity.
func TestHealthzDegraded(t *testing.T) {
	var mu sync.Mutex
	status, ready := "ok", true
	srv := httptest.NewServer(NewHTTPHandlerOpts(NewRegistry(), HTTPOptions{
		Health: func() (string, bool) {
			mu.Lock()
			defer mu.Unlock()
			return status, ready
		},
	}))
	defer srv.Close()

	check := func(path string, wantCode int, wantStatus string, wantReady bool) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Errorf("%s status code = %d, want %d", path, resp.StatusCode, wantCode)
		}
		var doc struct {
			Status string `json:"status"`
			Ready  bool   `json:"ready"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("%s invalid JSON: %v", path, err)
		}
		if doc.Status != wantStatus || doc.Ready != wantReady {
			t.Errorf("%s = {%q, %v}, want {%q, %v}", path, doc.Status, doc.Ready, wantStatus, wantReady)
		}
	}

	check("/healthz", http.StatusOK, "ok", true)
	check("/healthz?ready=1", http.StatusOK, "ok", true)

	mu.Lock()
	status, ready = "degraded", false
	mu.Unlock()
	check("/healthz", http.StatusOK, "degraded", false)
	check("/healthz?ready=1", http.StatusServiceUnavailable, "degraded", false)
}

// TestHTTPHandlerExtraMounts checks NewHTTPHandlerWith mounts additional
// endpoints alongside the built-ins (how /events.json and /incidents.json
// reach the telemetry server without inverting the import graph).
func TestHTTPHandlerExtraMounts(t *testing.T) {
	extra := map[string]http.Handler{
		"/extra.json": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Write([]byte(`{"extra":true}`))
		}),
	}
	srv := httptest.NewServer(NewHTTPHandlerWith(NewRegistry(), nil, extra))
	defer srv.Close()
	for _, path := range []string{"/extra.json", "/healthz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
	}
}

// TestExtraMountCollisionPanics pins the duplicate-mount diagnosis: an extra
// handler on a built-in path is a wiring bug that must fail loudly at
// construction with a message naming the offending pattern, not surface as a
// shadowed scrape or an opaque mux panic later.
func TestExtraMountCollisionPanics(t *testing.T) {
	for _, pattern := range []string{"/metrics", "/metrics.json", "/spans.json", "/healthz"} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("no panic for extra mount on %s", pattern)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "telemetry:") || !strings.Contains(msg, pattern) {
					t.Fatalf("panic for %s = %v, want telemetry-prefixed message naming the pattern", pattern, r)
				}
			}()
			NewHTTPHandlerWith(NewRegistry(), nil, map[string]http.Handler{
				pattern: http.NotFoundHandler(),
			})
		}()
	}
}

// TestRuntimeSeriesOnDefaultScrape pins satellite coverage: every metrics
// endpoint carries baseline Go runtime health without any explicit wiring,
// refreshed at scrape time.
func TestRuntimeSeriesOnDefaultScrape(t *testing.T) {
	srv := httptest.NewServer(NewHTTPHandler(NewRegistry(), nil))
	defer srv.Close()

	runtime.GC() // guarantee at least one pause for go_gc_pauses_total

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE go_goroutines gauge",
		"# TYPE go_heap_alloc_bytes gauge",
		"# TYPE go_gc_pauses_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []Metric `json:"metrics"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]int64{}
	for _, m := range doc.Metrics {
		vals[m.Name] = m.Value
	}
	if vals["go_goroutines"] <= 0 {
		t.Errorf("go_goroutines = %d, want > 0", vals["go_goroutines"])
	}
	if vals["go_heap_alloc_bytes"] <= 0 {
		t.Errorf("go_heap_alloc_bytes = %d, want > 0", vals["go_heap_alloc_bytes"])
	}
	if vals["go_gc_pauses_total"] <= 0 {
		t.Errorf("go_gc_pauses_total = %d, want > 0 after runtime.GC", vals["go_gc_pauses_total"])
	}
}
