// Package telemetry is the repo's zero-dependency observability core: the
// runtime counterpart of the paper's evaluation methodology. The paper
// reports per-platform inference latency as mean ± 95% CI (Table I) and
// argues the CSD defense runs continuously inside a loaded data-center node
// (§II, §IV); an operator of such a node needs those same quantities live —
// per-device latency distributions, queue pressure, verdict rates — to know
// the defense is healthy. This package supplies the instruments:
//
//   - Counter and Gauge: atomic scalars.
//   - Histogram: a lock-free fixed-bucket latency histogram with streaming
//     quantile estimation (p50/p90/p99) and mean ± 95% CI, mirroring the
//     paper's Table I reporting convention.
//   - Registry: a labeled metric namespace with Prometheus-text and JSON
//     exposition plus a human-readable summary table.
//   - Span and SpanLog: a lightweight per-request trace of the pipeline
//     phases (queue wait → SSD transfer → FPGA compute → verdict).
//
// Everything is safe for concurrent use and built only on the standard
// library; the rest of the stack (internal/serve, internal/core,
// internal/node, internal/detect, internal/cti) instruments against it.
// Construction helpers are nil-receiver safe: calling Counter/Gauge/
// Histogram on a nil *Registry returns a live but unregistered metric, so
// instrumented code needs no "is telemetry enabled" branches.
//
// A note on clocks: the device-side histograms (transfer, compute) record
// *simulated* device time from infer.Timing — the calibrated timing model
// that stands in for real hardware — while queue-wait histograms record
// wall time, because queueing happens in the real host scheduler. See
// DESIGN.md ("Telemetry").
package telemetry

import "sync/atomic"

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative deltas are ignored: a counter is monotonic, and a
// silent decrement would corrupt rate queries downstream.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, model generation).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
