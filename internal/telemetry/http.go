package telemetry

import (
	"encoding/json"
	"net/http"
)

// NewHTTPHandler returns the metrics endpoint served by cmd/csddetect's
// -metrics-addr flag:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot (plus recent spans when a log is given)
//	/spans.json    the SpanLog ring: recent per-request pipeline spans
//	/healthz       liveness probe, {"status":"ok"}
//
// spans may be nil (then /spans.json reports an empty ring). The handler is
// safe for concurrent use alongside live instrumentation — that is the
// point of it.
func NewHTTPHandler(r *Registry, spans *SpanLog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Metrics []Metric `json:"metrics"`
			Spans   []Span   `json:"recent_spans,omitempty"`
		}{Metrics: r.Snapshot(), Spans: spans.Snapshot()})
	})
	mux.HandleFunc("/spans.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		snap := spans.Snapshot()
		_ = enc.Encode(struct {
			Total    int64  `json:"total"`
			Retained int    `json:"retained"`
			Spans    []Span `json:"spans"`
		}{Total: spans.Total(), Retained: len(snap), Spans: snap})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}` + "\n"))
	})
	return mux
}
