package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"sort"
	"time"
)

// processStart anchors the uptime reported by /healthz.
var processStart = time.Now()

// buildInfo is the /healthz identification block, resolved once from the
// binary's embedded build metadata.
type buildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

func readBuildInfo() buildInfo {
	var b buildInfo
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.GoVersion = bi.GoVersion
	b.Module = bi.Main.Path
	b.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}

// NewHTTPHandler returns the metrics endpoint served by cmd/csddetect's
// -metrics-addr flag:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot (plus recent spans when a log is given)
//	/spans.json    the SpanLog ring: recent per-request pipeline spans
//	/healthz       liveness probe: status, build identification (module,
//	               version, go version, VCS revision), and process uptime
//
// Every scrape of /metrics or /metrics.json also refreshes the baseline Go
// runtime series (go_goroutines, go_heap_alloc_bytes, go_gc_pauses_total),
// so runtime health is visible even with no other instrumentation wired.
//
// spans may be nil (then /spans.json reports an empty ring). Extra handlers
// (e.g. the event log's /events.json and the incident recorder's
// /incidents.json, which live above this package in the import graph) mount
// via NewHTTPHandlerWith. The handler is safe for concurrent use alongside
// live instrumentation — that is the point of it.
func NewHTTPHandler(r *Registry, spans *SpanLog) http.Handler {
	return NewHTTPHandlerWith(r, spans, nil)
}

// NewHTTPHandlerWith is NewHTTPHandler plus extra pattern → handler mounts
// on the same mux. An extra pattern that collides with a built-in endpoint
// panics at construction — a wiring bug, caught at the call site instead of
// surfacing as shadowed scrapes later. Extra mounts are applied in sorted
// pattern order, so mounting is deterministic.
func NewHTTPHandlerWith(r *Registry, spans *SpanLog, extra map[string]http.Handler) http.Handler {
	return NewHTTPHandlerOpts(r, HTTPOptions{Spans: spans, Extra: extra})
}

// HTTPOptions configures NewHTTPHandlerOpts.
type HTTPOptions struct {
	// Spans backs /spans.json; nil reports an empty ring.
	Spans *SpanLog
	// Extra mounts additional pattern → handler pairs on the same mux
	// (e.g. /events.json, /incidents.json, /slo.json).
	Extra map[string]http.Handler
	// Health, when non-nil, supplies the /healthz judgment: a status string
	// ("ok", "degraded", ...) and whether the process can serve. When not
	// ready, /healthz?ready=1 answers 503 so probes can gate on capacity
	// rather than mere liveness; the plain /healthz stays 200 (the process
	// is alive) but reports the degraded status honestly.
	Health func() (status string, ready bool)
}

// NewHTTPHandlerOpts is NewHTTPHandler with the full option set.
func NewHTTPHandlerOpts(r *Registry, opts HTTPOptions) http.Handler {
	spans := opts.Spans
	rt := newRuntimeStats(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		rt.refresh()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		rt.refresh()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Zero state serializes as [], never null, like every JSON
		// endpoint in the stack.
		metrics := r.Snapshot()
		if metrics == nil {
			metrics = []Metric{}
		}
		_ = enc.Encode(struct {
			Metrics []Metric `json:"metrics"`
			Spans   []Span   `json:"recent_spans,omitempty"`
		}{Metrics: metrics, Spans: spans.Snapshot()})
	})
	mux.HandleFunc("/spans.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		snap := spans.Snapshot()
		if snap == nil {
			snap = []Span{}
		}
		_ = enc.Encode(struct {
			Total    int64  `json:"total"`
			Retained int    `json:"retained"`
			Spans    []Span `json:"spans"`
		}{Total: spans.Total(), Retained: len(snap), Spans: snap})
	})
	build := readBuildInfo()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		status, ready := "ok", true
		if opts.Health != nil {
			status, ready = opts.Health()
		}
		w.Header().Set("Content-Type", "application/json")
		if !ready && req.URL.Query().Get("ready") != "" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Status        string    `json:"status"`
			Ready         bool      `json:"ready"`
			Build         buildInfo `json:"build"`
			UptimeSeconds float64   `json:"uptime_seconds"`
		}{Status: status, Ready: ready, Build: build, UptimeSeconds: time.Since(processStart).Seconds()})
	})
	// Extra mounts are validated against the built-in endpoints and mounted
	// in sorted order: a collision is a wiring bug that would otherwise
	// surface as a mux panic (or, worse, silent shadowing on an older mux)
	// far from the misconfigured call site, and map iteration order must not
	// decide which handler wins.
	builtin := map[string]bool{
		"/metrics": true, "/metrics.json": true, "/spans.json": true, "/healthz": true,
	}
	patterns := make([]string, 0, len(opts.Extra))
	for pattern := range opts.Extra {
		if builtin[pattern] {
			panic(fmt.Sprintf("telemetry: extra handler pattern %q collides with a built-in endpoint (/metrics, /metrics.json, /spans.json, /healthz)", pattern))
		}
		patterns = append(patterns, pattern)
	}
	sort.Strings(patterns)
	for _, pattern := range patterns {
		mux.Handle(pattern, opts.Extra[pattern])
	}
	return mux
}
