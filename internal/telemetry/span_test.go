package telemetry

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestSpanRecordAndString(t *testing.T) {
	s := &Span{Name: "window"}
	s.Record(PhaseQueue, 2*time.Microsecond)
	s.Record(PhaseTransfer, 40*time.Microsecond)
	s.Record(PhaseCompute, 200*time.Microsecond)
	s.Record(PhaseVerdict, 100*time.Nanosecond)
	if got := s.Total(); got != 242*time.Microsecond+100*time.Nanosecond {
		t.Fatalf("total = %v", got)
	}
	out := s.String()
	for _, want := range []string{"window:", "queue=2µs", "transfer=40µs", "compute=200µs", "verdict=100ns", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q: %s", want, out)
		}
	}
}

func TestSpanContextRoundTrip(t *testing.T) {
	if SpanFrom(context.Background()) != nil {
		t.Fatal("empty context carried a span")
	}
	s := &Span{Name: "x"}
	ctx := WithSpan(context.Background(), s)
	if got := SpanFrom(ctx); got != s {
		t.Fatalf("SpanFrom = %p, want %p", got, s)
	}
}

func TestSpanLogRing(t *testing.T) {
	l := NewSpanLog(3)
	for i := 0; i < 5; i++ {
		l.Add(Span{Name: string(rune('a' + i))})
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d spans, want 3", len(got))
	}
	// Oldest-first: c, d, e survive after a and b were evicted.
	for i, want := range []string{"c", "d", "e"} {
		if got[i].Name != want {
			t.Errorf("span %d = %q, want %q", i, got[i].Name, want)
		}
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d, want 5", l.Total())
	}
}

func TestSpanLogNilSafe(t *testing.T) {
	var l *SpanLog
	l.Add(Span{Name: "x"}) // must not panic
	if l.Snapshot() != nil || l.Total() != 0 {
		t.Fatal("nil span log not inert")
	}
}
