package telemetry

import (
	"runtime/metrics"
	"sync"
)

// runtimeStats maintains the baseline Go runtime health series every metrics
// endpoint exports by default: goroutine count, live heap bytes, and
// cumulative GC pauses. The series are refreshed lazily at scrape time — a
// scrape-driven read of three runtime/metrics samples, no background
// goroutine — so even a process with no other instrumentation wired answers
// "is the runtime healthy" from /metrics alone. The deeper runtime telemetry
// (allocation deltas, pause distributions, contention sites) lives in
// internal/prof.
type runtimeStats struct {
	mu         sync.Mutex
	goroutines *Gauge
	heap       *Gauge
	gcPauses   *Counter
	// lastPauses is the previously observed cumulative pause count; it
	// starts at zero so the first scrape credits every pause since process
	// start to the counter.
	lastPauses uint64
	samples    []metrics.Sample
}

// newRuntimeStats registers the go_* series on r. A nil registry yields a
// nil *runtimeStats, whose refresh is a no-op.
func newRuntimeStats(r *Registry) *runtimeStats {
	if r == nil {
		return nil
	}
	return &runtimeStats{
		goroutines: r.Gauge("go_goroutines", "Live goroutines at the last scrape."),
		heap:       r.Gauge("go_heap_alloc_bytes", "Bytes of live heap objects at the last scrape."),
		gcPauses:   r.Counter("go_gc_pauses_total", "Cumulative garbage-collection stop-the-world pauses."),
		samples: []metrics.Sample{
			{Name: "/sched/goroutines:goroutines"},
			{Name: "/memory/classes/heap/objects:bytes"},
			{Name: "/gc/pauses:seconds"},
		},
	}
}

// refresh re-reads the runtime and updates the go_* series. Safe for
// concurrent scrapes and on a nil receiver.
func (s *runtimeStats) refresh() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	metrics.Read(s.samples)
	s.goroutines.Set(int64(s.samples[0].Value.Uint64()))
	s.heap.Set(int64(s.samples[1].Value.Uint64()))
	var total uint64
	for _, c := range s.samples[2].Value.Float64Histogram().Counts {
		total += c
	}
	if total > s.lastPauses {
		s.gcPauses.Add(int64(total - s.lastPauses))
	}
	s.lastPauses = total
}
