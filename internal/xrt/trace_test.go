package xrt

import (
	"strings"
	"testing"

	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/trace"
)

// TestTraceInstrumentation drives the raw runtime with a tracer attached
// and checks that the XRT layer emits what the timeline viewer expects:
// per-CU kernel events carrying cycle counts and loop attributions, runtime
// wrapper events for the BO syncs, and the stamped job ID on all of them.
func TestTraceInstrumentation(t *testing.T) {
	card, dev := testDevice(t)
	tr := trace.New()
	dev.SetTracer(tr, "dev0")
	dev.TraceJob(7)
	if err := dev.LoadXclbin(testBinary(t)); err != nil {
		t.Fatal(err)
	}

	seq := []int{1, 2, 3, 4}
	if _, err := card.StoreSequence(0, seq); err != nil {
		t.Fatal(err)
	}
	bo, err := dev.AllocBO(int64(len(seq)*csd.ItemBytes), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bo.SyncFromSSD(0); err != nil {
		t.Fatal(err)
	}
	gates, err := dev.Kernel("kernel_gates")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gates.Start(4).Wait(); err != nil {
		t.Fatal(err)
	}

	cuTracks := map[string]bool{}
	runtimeEvents := 0
	for _, ev := range tr.Events() {
		if ev.Track.Group != "dev0" {
			t.Fatalf("event %q on group %q, want dev0", ev.Name, ev.Track.Group)
		}
		if ev.Job != 7 {
			t.Errorf("event %q carries job %d, want stamped job 7", ev.Name, ev.Job)
		}
		switch ev.Cat {
		case trace.CatKernel:
			cuTracks[ev.Track.Name] = true
			if ev.Cycles <= 0 || len(ev.Loops) == 0 {
				t.Errorf("kernel event on %s lacks cycles/loops: %+v", ev.Track.Name, ev)
			}
			var sum int64
			for _, l := range ev.Loops {
				sum += l.Cycles
			}
			if sum != ev.Cycles {
				t.Errorf("loop cycles sum %d != event cycles %d", sum, ev.Cycles)
			}
		case trace.CatRuntime:
			if ev.Name == "SyncFromSSD" {
				runtimeEvents++
			}
		}
	}
	// 4 invocations on the 4-CU kernel: one event per CU lane.
	if len(cuTracks) != 4 {
		t.Fatalf("kernel events on %d CU tracks, want 4: %v", len(cuTracks), cuTracks)
	}
	for name := range cuTracks {
		if !strings.HasPrefix(name, "cu-kernel_gates-") {
			t.Errorf("unexpected CU track name %q", name)
		}
	}
	if runtimeEvents != 1 {
		t.Fatalf("SyncFromSSD runtime events = %d, want 1", runtimeEvents)
	}
}
