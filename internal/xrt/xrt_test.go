package xrt

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/ssd"
	"github.com/kfrida1/csdinf/internal/vitis"
)

func testBinary(t *testing.T) *vitis.Binary {
	t.Helper()
	specs, err := kernels.Specs(lstm.PaperConfig(), kernels.Config{Level: kernels.LevelFixedPoint})
	if err != nil {
		t.Fatal(err)
	}
	var objs []*vitis.KernelObject
	for _, spec := range specs {
		obj, err := vitis.Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}
	bin, err := vitis.Link(objs, fpga.AlveoU200)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func testDevice(t *testing.T) (*csd.SmartSSD, *Device) {
	t.Helper()
	card, err := csd.New(csd.Config{SSD: ssd.Config{Capacity: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := Open(card)
	if err != nil {
		t.Fatal(err)
	}
	return card, dev
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(nil); err == nil {
		t.Fatal("nil card: expected error")
	}
}

func TestLoadXclbin(t *testing.T) {
	_, dev := testDevice(t)
	if err := dev.LoadXclbin(nil); err == nil {
		t.Error("nil xclbin: expected error")
	}
	if _, err := dev.Kernel("kernel_gates"); !errors.Is(err, ErrNoProgram) {
		t.Errorf("kernel before load: error = %v, want ErrNoProgram", err)
	}
	bin := testBinary(t)
	if err := dev.LoadXclbin(bin); err != nil {
		t.Fatal(err)
	}
	if dev.Program() != bin {
		t.Fatal("program not retained")
	}
}

func TestBOSyncRoundTrip(t *testing.T) {
	_, dev := testDevice(t)
	bo, err := dev.AllocBO(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bo.Size() != 64 || bo.Bank() != 0 {
		t.Fatalf("BO = size %d bank %d", bo.Size(), bo.Bank())
	}
	payload := []byte("weights and biases, scaled by 1e6..")
	d1, err := bo.SyncToDevice(payload)
	if err != nil {
		t.Fatal(err)
	}
	if d1 <= 0 {
		t.Fatal("no transfer time charged")
	}
	dst := make([]byte, len(payload))
	if _, err := bo.SyncFromDevice(dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, payload) {
		t.Fatalf("round trip = %q", dst)
	}
}

func TestBOSyncFromSSD(t *testing.T) {
	card, dev := testDevice(t)
	seq := []int{1, 2, 3, 4}
	if _, err := card.StoreSequence(4096, seq); err != nil {
		t.Fatal(err)
	}
	bo, err := dev.AllocBO(int64(len(seq)*csd.ItemBytes), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bo.SyncFromSSD(4096); err != nil {
		t.Fatal(err)
	}
	got, err := csd.DecodeItems(bo.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatalf("item %d = %d", i, got[i])
		}
	}
	// P2P traffic accounted, no host traffic for the sequence fetch.
	if card.Traffic().P2PBytes == 0 {
		t.Fatal("P2P path not used")
	}
}

func TestKernelRuns(t *testing.T) {
	_, dev := testDevice(t)
	if err := dev.LoadXclbin(testBinary(t)); err != nil {
		t.Fatal(err)
	}
	gates, err := dev.Kernel("kernel_gates")
	if err != nil {
		t.Fatal(err)
	}
	if gates.CUs() != 4 || gates.Name() != "kernel_gates" {
		t.Fatalf("kernel = %s with %d CUs", gates.Name(), gates.CUs())
	}
	// 4 invocations fit the 4 CUs: one round.
	d4, err := gates.Start(4).Wait()
	if err != nil {
		t.Fatal(err)
	}
	// 8 invocations: two rounds.
	d8, err := gates.Start(8).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if d8 != 2*d4 {
		t.Fatalf("8 invocations = %v, want 2 × %v", d8, d4)
	}
	if _, err := gates.Start(0).Wait(); err == nil {
		t.Error("zero invocations: expected error")
	}
	if _, err := dev.Kernel("missing"); err == nil {
		t.Error("unknown kernel: expected error")
	}
	if dev.KernelTime() != d4+d8 {
		t.Fatalf("cumulative kernel time = %v, want %v", dev.KernelTime(), d4+d8)
	}
}

func TestFullHostFlowTiming(t *testing.T) {
	// The paper's per-item flow through the raw runtime: preprocess, four
	// parallel gate CUs, hidden state. The summed simulated time must equal
	// the engine-level per-item figure (~2.2 µs).
	_, dev := testDevice(t)
	if err := dev.LoadXclbin(testBinary(t)); err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	for _, step := range []struct {
		kernel string
		n      int
	}{
		{"kernel_preprocess", 1},
		{"kernel_gates", 4}, // one per gate, all CUs in parallel
		{"kernel_hidden_state", 1},
	} {
		k, err := dev.Kernel(step.kernel)
		if err != nil {
			t.Fatal(err)
		}
		d, err := k.Start(step.n).Wait()
		if err != nil {
			t.Fatal(err)
		}
		total += d
	}
	us := float64(total.Nanoseconds()) / 1000
	if us < 2.0 || us > 2.5 {
		t.Fatalf("per-item host-flow time = %v µs, want ~2.2", us)
	}
}
