// Package xrt models the Xilinx Runtime (XRT) programming interface the
// paper's host application is written against (§II: the SmartSSD "is
// accompanied by a comprehensive development toolkit that includes a
// runtime library, an Application Programming Interface (API), a compiler,
// and necessary drivers"; §IV: "all necessary code for the host and
// kernels ... made use of Xilinx Runtime (XRT)").
//
// The shape follows the native XRT C++ API: open a device, load an xclbin
// (a linked vitis.Binary), allocate buffer objects in specific DDR banks,
// sync data between host/SSD and device memory, obtain kernel handles, and
// launch runs whose completion is awaited. Timing comes from the same
// models as everywhere else in this repository: PCIe link costs for syncs,
// scheduled kernel latencies for runs.
package xrt

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/vitis"
)

// Device is an opened CSD with (optionally) a program loaded.
type Device struct {
	card *csd.SmartSSD

	mu         sync.Mutex
	program    *vitis.Binary
	kernelTime time.Duration // cumulative simulated kernel execution time
}

// Open attaches the runtime to a CSD.
func Open(card *csd.SmartSSD) (*Device, error) {
	if card == nil {
		return nil, errors.New("xrt: nil device")
	}
	return &Device{card: card}, nil
}

// ErrNoProgram is returned when kernel operations run before LoadXclbin.
var ErrNoProgram = errors.New("xrt: no xclbin loaded")

// LoadXclbin loads a linked binary onto the device.
func (d *Device) LoadXclbin(bin *vitis.Binary) error {
	if bin == nil {
		return errors.New("xrt: nil xclbin")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.program = bin
	return nil
}

// Program returns the loaded binary (nil if none).
func (d *Device) Program() *vitis.Binary {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.program
}

// KernelTime returns the cumulative simulated kernel execution time.
func (d *Device) KernelTime() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.kernelTime
}

// BO is a buffer object resident in a device DDR bank.
type BO struct {
	dev *Device
	buf *csd.Buffer
}

// AllocBO reserves a buffer object of the given size in a DDR bank.
func (d *Device) AllocBO(size int64, bank int) (*BO, error) {
	buf, err := d.card.Alloc(size, bank)
	if err != nil {
		return nil, fmt.Errorf("xrt: %w", err)
	}
	return &BO{dev: d, buf: buf}, nil
}

// Size returns the buffer size in bytes.
func (bo *BO) Size() int64 { return bo.buf.Size }

// Bank returns the DDR bank the buffer lives in.
func (bo *BO) Bank() int { return bo.buf.Bank }

// Bytes exposes the device-side contents (the kernel's view).
func (bo *BO) Bytes() []byte { return bo.buf.Bytes() }

// SyncToDevice moves host data into the buffer over the host PCIe link
// (XCL_BO_SYNC_BO_TO_DEVICE).
func (bo *BO) SyncToDevice(data []byte) (time.Duration, error) {
	t, err := bo.dev.card.WriteBuffer(bo.buf, data)
	if err != nil {
		return 0, fmt.Errorf("xrt: sync to device: %w", err)
	}
	return t, nil
}

// SyncFromDevice copies the buffer back to host memory
// (XCL_BO_SYNC_BO_FROM_DEVICE).
func (bo *BO) SyncFromDevice(dst []byte) (time.Duration, error) {
	t, err := bo.dev.card.ReadBuffer(bo.buf, dst)
	if err != nil {
		return 0, fmt.Errorf("xrt: sync from device: %w", err)
	}
	return t, nil
}

// SyncFromSSD fills the buffer straight from the drive over the on-board
// P2P path — the SmartSSD-specific extension that bypasses the host.
func (bo *BO) SyncFromSSD(ssdOff int64) (time.Duration, error) {
	t, err := bo.dev.card.TransferP2P(ssdOff, bo.buf)
	if err != nil {
		return 0, fmt.Errorf("xrt: sync from ssd: %w", err)
	}
	return t, nil
}

// Kernel is a handle to a placed kernel in the loaded program.
type Kernel struct {
	dev  *Device
	name string
	// latency is one CU's per-invocation latency.
	latency time.Duration
	cus     int
}

// Kernel resolves a kernel by name from the loaded program.
func (d *Device) Kernel(name string) (*Kernel, error) {
	d.mu.Lock()
	program := d.program
	d.mu.Unlock()
	if program == nil {
		return nil, ErrNoProgram
	}
	for _, obj := range program.Objects {
		if obj.Name == name {
			return &Kernel{
				dev:     d,
				name:    name,
				latency: program.Device().Duration(obj.CyclesPerInvocation),
				cus:     obj.Spec.CUs,
			}, nil
		}
	}
	return nil, fmt.Errorf("xrt: kernel %q not in loaded xclbin", name)
}

// Name returns the kernel name.
func (k *Kernel) Name() string { return k.name }

// CUs returns the number of compute units available.
func (k *Kernel) CUs() int { return k.cus }

// Run is an in-flight kernel execution.
type Run struct {
	duration time.Duration
	err      error
}

// Start enqueues n parallel invocations of the kernel (one per CU where
// possible; excess invocations serialize in ⌈n/CUs⌉ rounds, the way real
// CU scheduling behaves). Use n=1 for a plain launch.
func (k *Kernel) Start(n int) *Run {
	if n <= 0 {
		return &Run{err: fmt.Errorf("xrt: kernel %s: invocation count %d must be positive", k.name, n)}
	}
	rounds := (n + k.cus - 1) / k.cus
	d := time.Duration(rounds) * k.latency
	k.dev.mu.Lock()
	k.dev.kernelTime += d
	k.dev.mu.Unlock()
	return &Run{duration: d}
}

// Wait blocks until the run completes (instantaneous in simulation) and
// returns the simulated execution time.
func (r *Run) Wait() (time.Duration, error) {
	if r.err != nil {
		return 0, r.err
	}
	return r.duration, nil
}
