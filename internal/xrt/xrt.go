// Package xrt models the Xilinx Runtime (XRT) programming interface the
// paper's host application is written against (§II: the SmartSSD "is
// accompanied by a comprehensive development toolkit that includes a
// runtime library, an Application Programming Interface (API), a compiler,
// and necessary drivers"; §IV: "all necessary code for the host and
// kernels ... made use of Xilinx Runtime (XRT)").
//
// The shape follows the native XRT C++ API: open a device, load an xclbin
// (a linked vitis.Binary), allocate buffer objects in specific DDR banks,
// sync data between host/SSD and device memory, obtain kernel handles, and
// launch runs whose completion is awaited. Timing comes from the same
// models as everywhere else in this repository: PCIe link costs for syncs,
// scheduled kernel latencies for runs.
package xrt

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/trace"
	"github.com/kfrida1/csdinf/internal/vitis"
)

// Device is an opened CSD with (optionally) a program loaded.
type Device struct {
	card *csd.SmartSSD

	mu         sync.Mutex
	program    *vitis.Binary
	kernelTime time.Duration // cumulative simulated kernel execution time

	tracer     *trace.Tracer
	traceGroup string
	traceJob   atomic.Int64
}

// SetTracer attaches a timeline tracer under the given track group and
// forwards it to the underlying card, so BO syncs land on the SSD/PCIe/DDR
// tracks and kernel runs land on per-CU tracks of the same group. The sync
// APIs additionally wrap each call in a runtime-category event, the
// analogue of the XRT API trace in Vitis Analyzer.
func (d *Device) SetTracer(t *trace.Tracer, group string) {
	d.mu.Lock()
	d.tracer = t
	d.traceGroup = group
	d.mu.Unlock()
	d.card.SetTracer(t, group)
}

// TraceJob stamps the trace correlation ID attributed to subsequent syncs
// and kernel runs (the XRT API predates context plumbing, as the real one
// does; the host thread owning the device stream sets the job up front).
func (d *Device) TraceJob(id int64) {
	d.traceJob.Store(id)
	d.card.TraceJob(id)
}

// tracerState snapshots the tracer attachment.
func (d *Device) tracerState() (*trace.Tracer, string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tracer, d.traceGroup
}

// traceCall wraps one runtime API call: begin marks the device-time anchor
// before the call, and traceCall emits a runtime-category event on the
// group's "xrt" track spanning whatever device work the call recorded.
func (d *Device) traceCall(name string, begin time.Duration) {
	tr, group := d.tracerState()
	if !tr.Enabled() {
		return
	}
	end := tr.Cursor(group)
	if end < begin {
		end = begin
	}
	tr.Emit(trace.Event{
		Track: trace.Track{Group: group, Name: "xrt"},
		Name:  name, Cat: trace.CatRuntime,
		Start: begin, Dur: end - begin, Job: d.traceJob.Load(),
	})
}

// traceBegin returns the device-time anchor a runtime call would start at
// (zero when tracing is off).
func (d *Device) traceBegin() time.Duration {
	tr, group := d.tracerState()
	return tr.Anchor(group)
}

// Open attaches the runtime to a CSD.
func Open(card *csd.SmartSSD) (*Device, error) {
	if card == nil {
		return nil, errors.New("xrt: nil device")
	}
	return &Device{card: card}, nil
}

// ErrNoProgram is returned when kernel operations run before LoadXclbin.
var ErrNoProgram = errors.New("xrt: no xclbin loaded")

// LoadXclbin loads a linked binary onto the device.
func (d *Device) LoadXclbin(bin *vitis.Binary) error {
	if bin == nil {
		return errors.New("xrt: nil xclbin")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.program = bin
	return nil
}

// Program returns the loaded binary (nil if none).
func (d *Device) Program() *vitis.Binary {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.program
}

// KernelTime returns the cumulative simulated kernel execution time.
func (d *Device) KernelTime() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.kernelTime
}

// BO is a buffer object resident in a device DDR bank.
type BO struct {
	dev *Device
	buf *csd.Buffer
}

// AllocBO reserves a buffer object of the given size in a DDR bank.
func (d *Device) AllocBO(size int64, bank int) (*BO, error) {
	buf, err := d.card.Alloc(size, bank)
	if err != nil {
		return nil, fmt.Errorf("xrt: %w", err)
	}
	return &BO{dev: d, buf: buf}, nil
}

// Size returns the buffer size in bytes.
func (bo *BO) Size() int64 { return bo.buf.Size }

// Bank returns the DDR bank the buffer lives in.
func (bo *BO) Bank() int { return bo.buf.Bank }

// Bytes exposes the device-side contents (the kernel's view).
func (bo *BO) Bytes() []byte { return bo.buf.Bytes() }

// SyncToDevice moves host data into the buffer over the host PCIe link
// (XCL_BO_SYNC_BO_TO_DEVICE).
func (bo *BO) SyncToDevice(data []byte) (time.Duration, error) {
	begin := bo.dev.traceBegin()
	t, err := bo.dev.card.WriteBuffer(bo.buf, data)
	if err != nil {
		return 0, fmt.Errorf("xrt: sync to device: %w", err)
	}
	bo.dev.traceCall("SyncToDevice", begin)
	return t, nil
}

// SyncFromDevice copies the buffer back to host memory
// (XCL_BO_SYNC_BO_FROM_DEVICE).
func (bo *BO) SyncFromDevice(dst []byte) (time.Duration, error) {
	begin := bo.dev.traceBegin()
	t, err := bo.dev.card.ReadBuffer(bo.buf, dst)
	if err != nil {
		return 0, fmt.Errorf("xrt: sync from device: %w", err)
	}
	bo.dev.traceCall("SyncFromDevice", begin)
	return t, nil
}

// SyncFromSSD fills the buffer straight from the drive over the on-board
// P2P path — the SmartSSD-specific extension that bypasses the host.
func (bo *BO) SyncFromSSD(ssdOff int64) (time.Duration, error) {
	begin := bo.dev.traceBegin()
	t, err := bo.dev.card.TransferP2P(ssdOff, bo.buf)
	if err != nil {
		return 0, fmt.Errorf("xrt: sync from ssd: %w", err)
	}
	bo.dev.traceCall("SyncFromSSD", begin)
	return t, nil
}

// Kernel is a handle to a placed kernel in the loaded program.
type Kernel struct {
	dev  *Device
	name string
	// latency is one CU's per-invocation latency.
	latency time.Duration
	cus     int
	// cycles and loops describe one CU invocation, for trace attribution.
	cycles int64
	loops  []trace.LoopCycles
}

// Kernel resolves a kernel by name from the loaded program.
func (d *Device) Kernel(name string) (*Kernel, error) {
	d.mu.Lock()
	program := d.program
	d.mu.Unlock()
	if program == nil {
		return nil, ErrNoProgram
	}
	for _, obj := range program.Objects {
		if obj.Name == name {
			k := &Kernel{
				dev:     d,
				name:    name,
				latency: program.Device().Duration(obj.CyclesPerInvocation),
				cus:     obj.Spec.CUs,
				cycles:  obj.CyclesPerInvocation,
			}
			for i, l := range obj.Spec.Loops {
				k.loops = append(k.loops, trace.LoopCycles{
					Name: l.Name, Cycles: obj.Schedules[i].Cycles,
				})
			}
			return k, nil
		}
	}
	return nil, fmt.Errorf("xrt: kernel %q not in loaded xclbin", name)
}

// Name returns the kernel name.
func (k *Kernel) Name() string { return k.name }

// CUs returns the number of compute units available.
func (k *Kernel) CUs() int { return k.cus }

// Run is an in-flight kernel execution.
type Run struct {
	duration time.Duration
	err      error
}

// Start enqueues n parallel invocations of the kernel (one per CU where
// possible; excess invocations serialize in ⌈n/CUs⌉ rounds, the way real
// CU scheduling behaves). Use n=1 for a plain launch.
func (k *Kernel) Start(n int) *Run {
	if n <= 0 {
		return &Run{err: fmt.Errorf("xrt: kernel %s: invocation count %d must be positive", k.name, n)}
	}
	rounds := (n + k.cus - 1) / k.cus
	d := time.Duration(rounds) * k.latency
	k.dev.mu.Lock()
	k.dev.kernelTime += d
	k.dev.mu.Unlock()
	k.traceStart(n, rounds, d)
	return &Run{duration: d}
}

// traceStart places the launch on the timeline: one event per engaged CU,
// all spanning the same interval (CUs run in parallel; excess invocations
// serialize into rounds within each CU's event). Cycle counts and loop
// attributions scale by the CU's round count.
func (k *Kernel) traceStart(n, rounds int, d time.Duration) {
	tr, group := k.dev.tracerState()
	if !tr.Enabled() {
		return
	}
	job := k.dev.traceJob.Load()
	loops := k.loops
	if rounds > 1 {
		loops = make([]trace.LoopCycles, len(k.loops))
		for i, l := range k.loops {
			loops[i] = trace.LoopCycles{Name: l.Name, Cycles: l.Cycles * int64(rounds)}
		}
	}
	at := tr.Anchor(group)
	used := n
	if used > k.cus {
		used = k.cus
	}
	for cu := 0; cu < used; cu++ {
		lane := "cu-" + k.name
		if k.cus > 1 {
			lane = fmt.Sprintf("cu-%s-%d", k.name, cu)
		}
		tr.Emit(trace.Event{
			Track: trace.Track{Group: group, Name: lane},
			Name:  k.name, Cat: trace.CatKernel,
			Start: at, Dur: d, Job: job,
			Cycles: k.cycles * int64(rounds), Loops: loops,
		})
	}
	tr.Advance(group, at+d)
}

// Wait blocks until the run completes (instantaneous in simulation) and
// returns the simulated execution time.
func (r *Run) Wait() (time.Duration, error) {
	if r.err != nil {
		return 0, r.err
	}
	return r.duration, nil
}
