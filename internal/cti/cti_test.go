package cti

import (
	"context"
	"sync"
	"testing"

	"github.com/kfrida1/csdinf/internal/core"
	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/detect"
	"github.com/kfrida1/csdinf/internal/report"
	"github.com/kfrida1/csdinf/internal/sandbox"
	"github.com/kfrida1/csdinf/internal/ssd"
	"github.com/kfrida1/csdinf/internal/train"
)

func testUpdater(t *testing.T) (*Updater, *UpdateResult) {
	t.Helper()
	base, err := dataset.Build(dataset.BuildConfig{
		RansomwareCount: 152, BenignCount: 155, Window: 40, Stride: 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := csd.New(csd.Config{SSD: ssd.Config{Capacity: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	u, res, err := NewUpdater(base, Config{
		Device: dev,
		Deploy: core.DeployConfig{SeqLen: 40},
		Train:  train.Config{Epochs: 3, EmbedDim: 4, HiddenSize: 6, Seed: 2},
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return u, res
}

func newStrainReports(t *testing.T, n int) []*report.Report {
	t.Helper()
	var out []*report.Report
	for i := 0; i < n; i++ {
		p, err := sandbox.RansomwareProfile("Lockbit", i%6)
		if err != nil {
			t.Fatal(err)
		}
		trace, err := p.Generate(200, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		r, err := report.FromTrace(
			report.Info{ID: i, Category: "file", Machine: "win11-x64"},
			report.Target{Name: "lockbit_new.exe", Family: "Lockbit", Variant: 100 + i},
			trace,
		)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
	return out
}

func TestNewUpdaterValidation(t *testing.T) {
	dev, err := csd.New(csd.Config{SSD: ssd.Config{Capacity: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewUpdater(nil, Config{Device: dev}); err == nil {
		t.Error("nil corpus: expected error")
	}
	if _, _, err := NewUpdater(&dataset.Dataset{Window: 10}, Config{Device: dev}); err == nil {
		t.Error("empty corpus: expected error")
	}
	base, err := dataset.Build(dataset.BuildConfig{
		RansomwareCount: 76, BenignCount: 31, Window: 20, Stride: 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewUpdater(base, Config{}); err == nil {
		t.Error("nil device: expected error")
	}
}

func TestInitialDeployment(t *testing.T) {
	u, res := testUpdater(t)
	if res.Generation != 1 {
		t.Fatalf("generation = %d", res.Generation)
	}
	if u.Engine() == nil || u.Engine().Engine() == nil {
		t.Fatal("no engine deployed")
	}
	if u.Engine().SeqLen() != 40 {
		t.Fatalf("SeqLen = %d", u.Engine().SeqLen())
	}
}

func TestIngestRetrainsAndSwaps(t *testing.T) {
	u, _ := testUpdater(t)
	before := u.Engine().Engine()
	sizeBefore := u.CorpusSize()

	res, err := u.Ingest(newStrainReports(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 2 {
		t.Fatalf("generation = %d", res.Generation)
	}
	if res.NewSequences == 0 {
		t.Fatal("reports contributed no windows")
	}
	if res.CorpusSize != sizeBefore+res.NewSequences {
		t.Fatalf("corpus accounting: %d != %d + %d", res.CorpusSize, sizeBefore, res.NewSequences)
	}
	if u.Engine().Engine() == before {
		t.Fatal("engine not swapped")
	}
}

func TestIngestValidation(t *testing.T) {
	u, _ := testUpdater(t)
	if _, err := u.Ingest(nil); err == nil {
		t.Error("empty ingest: expected error")
	}
	bad := &report.Report{Behavior: report.Behavior{Processes: []report.Process{{PID: 1}}}}
	if _, err := u.Ingest([]*report.Report{bad}); err == nil {
		t.Error("empty report: expected error")
	}
}

func TestHotSwapValidation(t *testing.T) {
	if _, err := NewHotSwapEngine(nil); err == nil {
		t.Error("nil engine: expected error")
	}
	u, _ := testUpdater(t)
	if err := u.Engine().Swap(nil); err == nil {
		t.Error("swap to nil: expected error")
	}
}

func TestHotSwapWindowMismatchRejected(t *testing.T) {
	u, _ := testUpdater(t)
	dev, err := csd.New(csd.Config{SSD: ssd.Config{Capacity: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	base, err := dataset.Build(dataset.BuildConfig{
		RansomwareCount: 76, BenignCount: 31, Window: 20, Stride: 20, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	other, _, err := NewUpdater(base, Config{
		Device: dev,
		Deploy: core.DeployConfig{SeqLen: 20},
		Train:  train.Config{Epochs: 1, EmbedDim: 4, HiddenSize: 4, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Engine().Swap(other.Engine().Engine()); err == nil {
		t.Fatal("mismatched window swap accepted")
	}
}

// TestLiveDetectorSurvivesSwap drives a detector through the hot-swap
// engine while an update happens concurrently: the stream must never
// observe an inconsistent engine.
func TestLiveDetectorSurvivesSwap(t *testing.T) {
	u, _ := testUpdater(t)
	det, err := detect.New(u.Engine(), detect.Config{Stride: 5, Threshold: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sandbox.ManualInteractionProfile().Generate(400, 5)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		if _, err := u.Ingest(newStrainReports(t, 2)); err != nil {
			errCh <- err
		}
	}()
	for _, call := range trace {
		if _, err := det.Observe(context.Background(), call); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if det.Stats().WindowsEvaluated == 0 {
		t.Fatal("detector never evaluated during swap")
	}
}
