// Package cti implements the model-maintenance loop the paper prescribes
// for production deployments (§III-A): "it is advisable to update the
// FPGA-based model with a version that has been retrained on new ransomware
// strains once they are uncovered in Cyber Threat Intelligence (CTI)
// feeds."
//
// The loop is: a CTI feed delivers sandbox analysis reports of newly
// observed strains → the updater folds their windows into the training
// corpus → retrains the classifier → redeploys it to the CSD → atomically
// swaps the running detector onto the new engine. The FPGA bitstream never
// changes — the paper's kernel design "remains fixed regardless of changes
// in the number of parameters ... the FPGA-based model is compiled once and
// can be updated at the operator's discretion" — only the weight buffers
// reload.
package cti

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/kfrida1/csdinf/internal/core"
	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/metrics"
	"github.com/kfrida1/csdinf/internal/report"
	"github.com/kfrida1/csdinf/internal/telemetry"
	"github.com/kfrida1/csdinf/internal/train"
)

// HotSwapEngine is an infer.Inferencer whose underlying inferencer can be
// replaced atomically while a detection stream is live. Reads are lock-free
// (an atomic pointer load); a swap becomes visible to the next request
// without stalling in-flight ones.
type HotSwapEngine struct {
	cur atomic.Pointer[holder]
	// swapMu serializes Swap calls so the SeqLen check and pointer store
	// are atomic with respect to other swappers (readers never take it).
	swapMu sync.Mutex

	// generation counts deployments (initial = 1); atomic so Generation()
	// stays lock-free for concurrent readers.
	generation atomic.Int64

	// swapsC and generationG start detached and are re-pointed at
	// registered instruments by Instrument; both guarded by swapMu.
	swapsC      *telemetry.Counter
	generationG *telemetry.Gauge

	// events, when non-nil, receives an info event per swap (guarded by
	// swapMu for writes; Swap reads it under the same lock).
	events *eventlog.Logger
}

// holder wraps the interface value so it can live behind atomic.Pointer.
type holder struct{ inf infer.Inferencer }

var _ infer.Inferencer = (*HotSwapEngine)(nil)

// NewHotSwapEngine wraps an initial inferencer.
func NewHotSwapEngine(inf infer.Inferencer) (*HotSwapEngine, error) {
	if inf == nil {
		return nil, errors.New("cti: nil engine")
	}
	h := &HotSwapEngine{}
	h.cur.Store(&holder{inf: inf})
	h.generation.Store(1)
	var noReg *telemetry.Registry
	h.swapsC = noReg.Counter("cti_swaps_total", "Model hot-swaps performed.")
	h.generationG = noReg.Gauge("cti_model_generation",
		"Generation of the live model (1 = initial deployment).")
	h.generationG.Set(1)
	return h, nil
}

// Instrument re-registers the engine's swap counter and model-generation
// gauge with reg, carrying over values accumulated while detached. It is
// safe against concurrent Swap calls and concurrent readers.
func (h *HotSwapEngine) Instrument(reg *telemetry.Registry) {
	h.swapMu.Lock()
	defer h.swapMu.Unlock()
	swaps := reg.Counter("cti_swaps_total", "Model hot-swaps performed.")
	gen := reg.Gauge("cti_model_generation",
		"Generation of the live model (1 = initial deployment).")
	swaps.Add(h.swapsC.Value())
	gen.Set(h.generation.Load())
	h.swapsC = swaps
	h.generationG = gen
}

// SetEvents attaches a structured event logger; each subsequent Swap emits
// an info "model.swap" event carrying the new generation, so incident
// reports can attribute verdicts to the model version that produced them.
func (h *HotSwapEngine) SetEvents(l *eventlog.Logger) {
	h.swapMu.Lock()
	defer h.swapMu.Unlock()
	h.events = l
}

// Generation returns the deployment generation of the live model (initial
// deployment = 1, incremented on every Swap). Lock-free.
func (h *HotSwapEngine) Generation() int64 { return h.generation.Load() }

// Predict delegates to the current inferencer.
func (h *HotSwapEngine) Predict(ctx context.Context, seq []int) (kernels.Result, infer.Timing, error) {
	return h.cur.Load().inf.Predict(ctx, seq)
}

// PredictStored delegates to the current inferencer.
func (h *HotSwapEngine) PredictStored(ctx context.Context, ssdOff int64) (kernels.Result, infer.Timing, error) {
	return h.cur.Load().inf.PredictStored(ctx, ssdOff)
}

// SeqLen returns the current inferencer's window length.
func (h *HotSwapEngine) SeqLen() int {
	return h.cur.Load().inf.SeqLen()
}

// Swap replaces the inferencer. The replacement must use the same window
// length (the hardware counter is fixed at synthesis time). In-flight
// requests finish on whichever engine they loaded; subsequent requests see
// the replacement.
func (h *HotSwapEngine) Swap(inf infer.Inferencer) error {
	if inf == nil {
		return errors.New("cti: nil engine")
	}
	h.swapMu.Lock()
	defer h.swapMu.Unlock()
	if cur := h.cur.Load().inf; inf.SeqLen() != cur.SeqLen() {
		return fmt.Errorf("cti: window length %d does not match deployed %d (fixed at synthesis)",
			inf.SeqLen(), cur.SeqLen())
	}
	h.cur.Store(&holder{inf: inf})
	h.swapsC.Inc()
	gen := h.generation.Add(1)
	h.generationG.Set(gen)
	h.events.Info(context.Background(), "cti", "model.swap",
		eventlog.F("generation", gen))
	return nil
}

// Engine returns the current inferencer (for inspection).
func (h *HotSwapEngine) Engine() infer.Inferencer {
	return h.cur.Load().inf
}

// Config controls the updater.
type Config struct {
	// Device is the CSD models are deployed to.
	Device *csd.SmartSSD
	// Deploy configures each deployment (level, part, window).
	Deploy core.DeployConfig
	// Train configures each retraining run.
	Train train.Config
	// Stride is the window stride for ingested traces; 0 defaults to the
	// dataset default.
	Stride int
	// TestFraction is the held-out share per retraining; 0 defaults 0.2.
	TestFraction float64
	// Seed drives splits and shuffles.
	Seed int64
	// Telemetry, when non-nil, registers the hot-swap engine's
	// cti_swaps_total counter and cti_model_generation gauge, and is
	// threaded into each deployment unless Deploy.Telemetry is set.
	Telemetry *telemetry.Registry
	// Events, when non-nil, is attached to the hot-swap engine (one info
	// model.swap event per redeployment) and threaded into each deployment
	// unless Deploy.Events is set.
	Events *eventlog.Logger
}

// Updater maintains the corpus, retrains on new CTI samples, and hot-swaps
// the deployed model. It is safe for concurrent use with a live detector
// reading through the HotSwapEngine; Ingest itself must not be called
// concurrently.
type Updater struct {
	cfg        Config
	corpus     *dataset.Dataset
	hot        *HotSwapEngine
	generation int
	model      *lstm.Model
}

// UpdateResult summarizes one retraining generation.
type UpdateResult struct {
	// Generation counts deployments (initial = 1).
	Generation int
	// NewSequences is how many windows the ingested reports contributed.
	NewSequences int
	// CorpusSize is the corpus size after ingestion.
	CorpusSize int
	// Final is the held-out evaluation of the new model.
	Final metrics.Scores
}

// NewUpdater trains an initial model on the base corpus and deploys it.
func NewUpdater(base *dataset.Dataset, cfg Config) (*Updater, *UpdateResult, error) {
	if base == nil || len(base.Sequences) == 0 {
		return nil, nil, errors.New("cti: empty base corpus")
	}
	if cfg.Device == nil {
		return nil, nil, errors.New("cti: nil device")
	}
	if cfg.TestFraction == 0 {
		cfg.TestFraction = 0.2
	}
	if cfg.Deploy.Telemetry == nil {
		cfg.Deploy.Telemetry = cfg.Telemetry
	}
	if cfg.Deploy.Events == nil {
		cfg.Deploy.Events = cfg.Events
	}
	u := &Updater{cfg: cfg, corpus: base}
	res, err := u.retrainAndDeploy(0)
	if err != nil {
		return nil, nil, err
	}
	return u, res, nil
}

// Engine returns the hot-swappable engine to wire into a detector.
func (u *Updater) Engine() *HotSwapEngine { return u.hot }

// Model returns the most recently trained classifier (e.g. to replicate
// onto additional devices or nodes).
func (u *Updater) Model() *lstm.Model { return u.model }

// CorpusSize returns the current corpus size.
func (u *Updater) CorpusSize() int { return len(u.corpus.Sequences) }

// Ingest folds the CTI reports into the corpus, retrains, redeploys, and
// swaps the live engine.
func (u *Updater) Ingest(reports []*report.Report) (*UpdateResult, error) {
	if len(reports) == 0 {
		return nil, errors.New("cti: no reports to ingest")
	}
	var traces []dataset.LabeledTrace
	for i, r := range reports {
		trace, err := r.Trace()
		if err != nil {
			return nil, fmt.Errorf("cti: report %d: %w", i, err)
		}
		source := r.Target.Name
		if r.Target.Family != "" {
			source = fmt.Sprintf("%s.v%d", r.Target.Family, r.Target.Variant)
		}
		traces = append(traces, dataset.LabeledTrace{
			Items:      trace,
			Ransomware: r.Ransomware(),
			Source:     source,
		})
	}
	fresh, err := dataset.FromTraces(traces, u.corpus.Window, u.cfg.Stride, u.cfg.Seed+int64(u.generation))
	if err != nil {
		return nil, fmt.Errorf("cti: window reports: %w", err)
	}
	u.corpus.Sequences = append(u.corpus.Sequences, fresh.Sequences...)
	return u.retrainAndDeploy(len(fresh.Sequences))
}

func (u *Updater) retrainAndDeploy(newSeqs int) (*UpdateResult, error) {
	u.generation++
	trainDS, testDS, err := u.corpus.Split(u.cfg.TestFraction, u.cfg.Seed+int64(u.generation))
	if err != nil {
		return nil, fmt.Errorf("cti: split: %w", err)
	}
	tr, err := train.Train(trainDS, testDS, u.cfg.Train)
	if err != nil {
		return nil, fmt.Errorf("cti: retrain generation %d: %w", u.generation, err)
	}
	eng, err := core.Deploy(u.cfg.Device, tr.Model, u.cfg.Deploy)
	if err != nil {
		return nil, fmt.Errorf("cti: deploy generation %d: %w", u.generation, err)
	}
	u.model = tr.Model
	if u.hot == nil {
		hot, err := NewHotSwapEngine(eng)
		if err != nil {
			return nil, err
		}
		if u.cfg.Telemetry != nil {
			hot.Instrument(u.cfg.Telemetry)
		}
		if u.cfg.Events != nil {
			hot.SetEvents(u.cfg.Events)
		}
		u.hot = hot
	} else if err := u.hot.Swap(eng); err != nil {
		return nil, err
	}
	return &UpdateResult{
		Generation:   u.generation,
		NewSequences: newSeqs,
		CorpusSize:   len(u.corpus.Sequences),
		Final:        tr.Final,
	}, nil
}
