package cti

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/kfrida1/csdinf/internal/core"
	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/ssd"
	"github.com/kfrida1/csdinf/internal/telemetry"
	"github.com/kfrida1/csdinf/internal/train"
)

// stubInf is a minimal Inferencer for exercising the hot-swap machinery
// without deploying a real engine.
type stubInf struct{ id int }

func (s *stubInf) Predict(ctx context.Context, seq []int) (kernels.Result, infer.Timing, error) {
	return kernels.Result{Probability: float64(s.id)}, infer.Timing{}, nil
}

func (s *stubInf) PredictStored(ctx context.Context, off int64) (kernels.Result, infer.Timing, error) {
	return kernels.Result{Probability: float64(s.id)}, infer.Timing{}, nil
}

func (s *stubInf) SeqLen() int { return 10 }

func registryGauge(t *testing.T, reg *telemetry.Registry, name string) int64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("gauge %s not in registry", name)
	return 0
}

// TestGenerationGaugeAdvancesUnderConcurrentReaders swaps models while
// reader goroutines hammer Predict, Generation, and registry snapshots:
// the generation gauge must advance monotonically through every swap and
// the swap counter must account each one (run with -race).
func TestGenerationGaugeAdvancesUnderConcurrentReaders(t *testing.T) {
	hot, err := NewHotSwapEngine(&stubInf{id: 0})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	hot.Instrument(reg)
	if g := hot.Generation(); g != 1 {
		t.Fatalf("initial generation = %d, want 1", g)
	}
	if g := registryGauge(t, reg, "cti_model_generation"); g != 1 {
		t.Fatalf("initial gauge = %d, want 1", g)
	}

	const swaps = 50
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int64
			for !stop.Load() {
				if _, _, err := hot.Predict(context.Background(), nil); err != nil {
					t.Error(err)
					return
				}
				g := hot.Generation()
				if g < last {
					t.Errorf("generation went backwards: %d after %d", g, last)
					return
				}
				last = g
				reg.Snapshot() // concurrent exposition reader
			}
		}()
	}

	for i := 1; i <= swaps; i++ {
		if err := hot.Swap(&stubInf{id: i}); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()

	if g := hot.Generation(); g != swaps+1 {
		t.Fatalf("final generation = %d, want %d", g, swaps+1)
	}
	if g := registryGauge(t, reg, "cti_model_generation"); g != swaps+1 {
		t.Fatalf("final gauge = %d, want %d", g, swaps+1)
	}
	if c := registryGauge(t, reg, "cti_swaps_total"); c != swaps {
		t.Fatalf("swap counter = %d, want %d", c, swaps)
	}
}

// TestInstrumentCarriesDetachedCounts verifies swaps performed before
// Instrument survive re-registration.
func TestInstrumentCarriesDetachedCounts(t *testing.T) {
	hot, err := NewHotSwapEngine(&stubInf{id: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := hot.Swap(&stubInf{id: i}); err != nil {
			t.Fatal(err)
		}
	}
	reg := telemetry.NewRegistry()
	hot.Instrument(reg)
	if c := registryGauge(t, reg, "cti_swaps_total"); c != 3 {
		t.Fatalf("carried swap count = %d, want 3", c)
	}
	if g := registryGauge(t, reg, "cti_model_generation"); g != 4 {
		t.Fatalf("carried generation = %d, want 4", g)
	}
}

func testUpdaterWithTelemetry(t *testing.T, reg *telemetry.Registry) (*Updater, *UpdateResult) {
	t.Helper()
	base, err := dataset.Build(dataset.BuildConfig{
		RansomwareCount: 152, BenignCount: 155, Window: 40, Stride: 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := csd.New(csd.Config{SSD: ssd.Config{Capacity: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	u, res, err := NewUpdater(base, Config{
		Device:    dev,
		Deploy:    core.DeployConfig{SeqLen: 40},
		Train:     train.Config{Epochs: 3, EmbedDim: 4, HiddenSize: 6, Seed: 2},
		Seed:      3,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return u, res
}

// TestUpdaterRegistersTelemetry wires a registry through the updater config
// and checks the ingest path advances the registered gauge.
func TestUpdaterRegistersTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	u, res := testUpdaterWithTelemetry(t, reg)
	if res.Generation != 1 {
		t.Fatalf("generation = %d", res.Generation)
	}
	if g := registryGauge(t, reg, "cti_model_generation"); g != 1 {
		t.Fatalf("gauge after deploy = %d, want 1", g)
	}
	if _, err := u.Ingest(newStrainReports(t, 2)); err != nil {
		t.Fatal(err)
	}
	if g := registryGauge(t, reg, "cti_model_generation"); g != 2 {
		t.Fatalf("gauge after ingest = %d, want 2", g)
	}
	if c := registryGauge(t, reg, "cti_swaps_total"); c != 1 {
		t.Fatalf("swaps after ingest = %d, want 1", c)
	}
}
