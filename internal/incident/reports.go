package incident

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// WriteReports writes one JSON report per recorded incident (closed and
// open) into dir, creating it if needed. Files are named
// incident-<id>-pid<pid>.json; an existing file for the same incident is
// overwritten, so calling WriteReports again after more windows refreshes
// the reports. Returns the number of reports written, or ErrNoIncidents
// when there is nothing to write.
func (r *Recorder) WriteReports(dir string) (int, error) {
	incidents := r.Snapshot()
	if len(incidents) == 0 {
		return 0, ErrNoIncidents
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("incident: create report dir: %w", err)
	}
	for _, inc := range incidents {
		data, err := json.MarshalIndent(inc, "", "  ")
		if err != nil {
			return 0, fmt.Errorf("incident: encode incident %d: %w", inc.ID, err)
		}
		name := fmt.Sprintf("incident-%d-pid%d.json", inc.ID, inc.PID)
		if err := os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644); err != nil {
			return 0, fmt.Errorf("incident: write report %s: %w", name, err)
		}
	}
	return len(incidents), nil
}
