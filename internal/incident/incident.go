// Package incident turns the detection stack's per-window forensic feed
// into SOC-facing incident reports.
//
// The paper's mitigation story ends at the write quarantine ("the CSD
// takes direct action to prevent further encryption"); an operator's story
// starts there: which process was flagged, how did the classifier's
// confidence evolve window by window, which model generation produced the
// verdicts, which device served them and how long did requests sit in its
// queue, and which trace jobs carry the device-level timeline of the same
// classifications. The Recorder answers those questions by folding the
// detect.WindowSample stream (wire Recorder.Window to detect.Config.OnWindow
// and Recorder.Evict to detect.MuxConfig.OnEvict) into one Incident per
// flagged process.
//
// Lifecycle: a process becomes a *candidate* on its first classified
// window; the candidate becomes an open Incident when a window first
// crosses the alert threshold; the incident closes when mitigation blocks
// the process, when the mux evicts its detector state (a later reappearance
// opens a distinct incident — the tracking epochs share no state), or when
// Flush is called at shutdown. Candidates that are never flagged are
// discarded silently; every flagged process yields exactly one Incident per
// tracking epoch.
//
// The Recorder is safe for concurrent use.
package incident

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/kfrida1/csdinf/internal/detect"
	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/trace"
)

// Window is one classified window in an incident's trajectory.
type Window struct {
	// Time is when the verdict was produced.
	Time time.Time `json:"time"`
	// CallIndex is the index of the API call that completed the window.
	CallIndex int64 `json:"call_index"`
	// Probability is the classifier's ransomware probability.
	Probability float64 `json:"probability"`
	// Verdict is the detector's response: "none", "alert", or "block".
	Verdict string `json:"verdict"`
	// Job is the trace correlation ID of the classification request (0 when
	// tracing is off); it also appears on the request's telemetry span,
	// timeline events, and eventlog events.
	Job int64 `json:"job,omitempty"`
	// Device is the serving device that executed the classification.
	Device string `json:"device,omitempty"`
	// QueueWait, Transfer, and Compute are the request's recorded pipeline
	// phases, in nanoseconds.
	QueueWait time.Duration `json:"queue_wait_ns"`
	Transfer  time.Duration `json:"transfer_ns"`
	Compute   time.Duration `json:"compute_ns"`
	// Truth is the ground-truth label that rode the classification request
	// ("ransomware" or "benign"); empty for unlabeled production traffic.
	// Together with Verdict it tells a reader at a glance whether this
	// window was a hit, a miss, or a false alarm.
	Truth string `json:"truth,omitempty"`
}

// Incident is the forensic record of one flagged process — or, for
// Kind "device", of one failed drive.
type Incident struct {
	// ID numbers incidents in open order, starting at 1.
	ID int64 `json:"id"`
	// Kind distinguishes process incidents (ransomware verdicts folded from
	// the window stream; the zero value, serialized as "process") from
	// device incidents (a drive fault reported by the fleet layer).
	Kind string `json:"kind,omitempty"`
	// PID is the flagged process (0 for device incidents).
	PID int `json:"pid"`
	// State is "open" until the incident closes.
	State string `json:"state"`
	// CloseReason is why the incident closed: "blocked" (mitigation fired),
	// "evicted" (the mux dropped the process's detector state), "flush"
	// (operator shutdown), or "device-failed" (device incidents). Empty
	// while open.
	CloseReason string `json:"close_reason,omitempty"`
	// FailureReason is the fault cause reported for a device incident
	// ("ecc-storm", "simulated-fault", ...); empty for process incidents.
	FailureReason string `json:"failure_reason,omitempty"`
	// Objective is the violated service-level objective of a Kind "slo"
	// incident; empty otherwise.
	Objective string `json:"objective,omitempty"`
	// FirstSeen is when the process's first window of this tracking epoch
	// was classified — including benign windows before the flag.
	FirstSeen time.Time `json:"first_seen"`
	// FlaggedAt is when a window first crossed the alert threshold.
	FlaggedAt time.Time `json:"flagged_at"`
	// BlockedAt is when mitigation fired; zero unless CloseReason is
	// "blocked".
	BlockedAt time.Time `json:"blocked_at,omitzero"`
	// ClosedAt is when the incident closed; zero while open.
	ClosedAt time.Time `json:"closed_at,omitzero"`
	// ModelGeneration is the cti deployment generation that was live when
	// the process was flagged (0 when no generation source is configured).
	ModelGeneration int64 `json:"model_generation,omitempty"`
	// WindowsTotal counts every classified window of the epoch, whether or
	// not it is retained in Trajectory.
	WindowsTotal int `json:"windows_total"`
	// AlertsTotal counts windows at or above the alert threshold.
	AlertsTotal int `json:"alerts_total"`
	// MaxProbability is the highest ransomware probability observed.
	MaxProbability float64 `json:"max_probability"`
	// Trajectory is the confidence trajectory: the most recent windows, in
	// order, bounded by Config.MaxTrajectory.
	Trajectory []Window `json:"trajectory"`
	// TrajectoryDropped counts windows evicted from the bounded Trajectory.
	TrajectoryDropped int `json:"trajectory_dropped,omitempty"`
	// Jobs are the distinct trace job IDs of the retained windows — the keys
	// for correlating this incident with the trace timeline export and
	// /spans.json.
	Jobs []int64 `json:"jobs,omitempty"`
	// Devices are the distinct serving devices that classified the windows
	// (for a device incident: the failed drive's registry ID).
	Devices []string `json:"devices,omitempty"`
	// QueueWaitTotal, TransferTotal, and ComputeTotal aggregate the pipeline
	// phases across every window of the epoch, in nanoseconds.
	QueueWaitTotal time.Duration `json:"queue_wait_total_ns"`
	TransferTotal  time.Duration `json:"transfer_total_ns"`
	ComputeTotal   time.Duration `json:"compute_total_ns"`
	// Truth and Family are the process's ground-truth label when the
	// traffic was labeled (quality.WithLabel): whether this incident
	// caught real ransomware (and which emulated family) or false-alarmed
	// on benign activity. Empty for unlabeled traffic.
	Truth  string `json:"truth,omitempty"`
	Family string `json:"family,omitempty"`
}

// Config controls the recorder.
type Config struct {
	// Generation, when non-nil, supplies the live model generation stamped
	// on incidents at flag time — wire cti.HotSwapEngine.Generation here.
	Generation func() int64
	// MaxTrajectory bounds each incident's retained window trajectory;
	// 0 defaults to 256. Older windows are dropped (and counted) first.
	MaxTrajectory int
	// MaxClosed bounds retained closed incidents; 0 defaults to 64. Oldest
	// are dropped first (WriteReports written before then are unaffected).
	MaxClosed int
	// Events, when non-nil, receives an incident lifecycle event per
	// transition: warn incident.open when a process is flagged, and
	// incident.close on closure (error level when mitigation blocked the
	// process, info otherwise).
	Events *eventlog.Logger
	// OnOpen, when non-nil, is invoked (outside the recorder's lock, with a
	// deep copy) every time an incident opens — a process flagged, a device
	// failure recorded, or an SLO breach recorded. Wire the continuous
	// profiler's flight-recorder dump here so every incident ships with the
	// runtime state that preceded it.
	OnOpen func(Incident)
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// Recorder folds the window stream into per-process incidents.
type Recorder struct {
	cfg Config

	mu sync.Mutex
	// tracked holds the per-PID state of the current epoch: a candidate
	// (flagged=false) or an open incident.
	tracked map[int]*state
	closed  []Incident
	nextID  int64
	opened  int64
}

type state struct {
	flagged bool
	inc     Incident
}

// NewRecorder builds a recorder.
func NewRecorder(cfg Config) (*Recorder, error) {
	if cfg.MaxTrajectory == 0 {
		cfg.MaxTrajectory = 256
	}
	if cfg.MaxTrajectory < 0 {
		return nil, fmt.Errorf("incident: MaxTrajectory must be positive, got %d", cfg.MaxTrajectory)
	}
	if cfg.MaxClosed == 0 {
		cfg.MaxClosed = 64
	}
	if cfg.MaxClosed < 0 {
		return nil, fmt.Errorf("incident: MaxClosed must be positive, got %d", cfg.MaxClosed)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Recorder{cfg: cfg, tracked: make(map[int]*state)}, nil
}

// Window folds one classified window into the process's incident state.
// Wire it to detect.Config.OnWindow.
func (r *Recorder) Window(s detect.WindowSample) {
	if r == nil {
		return
	}
	w := Window{
		Time:        s.Time,
		CallIndex:   s.CallIndex,
		Probability: s.Probability,
		Verdict:     verdict(s.Action),
		Job:         s.Job,
		Device:      s.Device,
		QueueWait:   s.QueueWait,
		Transfer:    s.Transfer,
		Compute:     s.Compute,
		Truth:       s.Truth,
	}
	if w.Time.IsZero() {
		w.Time = r.cfg.Clock()
	}

	r.mu.Lock()
	st, ok := r.tracked[s.PID]
	if !ok {
		st = &state{inc: Incident{PID: s.PID, State: "open", FirstSeen: w.Time}}
		r.tracked[s.PID] = st
	}
	inc := &st.inc
	if inc.Truth == "" && s.Truth != "" {
		inc.Truth, inc.Family = s.Truth, s.Family
	}
	inc.WindowsTotal++
	if s.Probability > inc.MaxProbability {
		inc.MaxProbability = s.Probability
	}
	inc.QueueWaitTotal += s.QueueWait
	inc.TransferTotal += s.Transfer
	inc.ComputeTotal += s.Compute
	if len(inc.Trajectory) >= r.cfg.MaxTrajectory {
		drop := len(inc.Trajectory) - r.cfg.MaxTrajectory + 1
		inc.Trajectory = append(inc.Trajectory[:0], inc.Trajectory[drop:]...)
		inc.TrajectoryDropped += drop
	}
	inc.Trajectory = append(inc.Trajectory, w)
	if w.Job != 0 && !containsJob(inc.Jobs, w.Job) && len(inc.Jobs) < r.cfg.MaxTrajectory {
		inc.Jobs = append(inc.Jobs, w.Job)
	}
	if w.Device != "" && !containsDevice(inc.Devices, w.Device) {
		inc.Devices = append(inc.Devices, w.Device)
	}

	var opened, blocked bool
	if s.Action >= detect.ActionAlert {
		inc.AlertsTotal++
		if !st.flagged {
			st.flagged = true
			r.nextID++
			r.opened++
			inc.ID = r.nextID
			inc.FlaggedAt = w.Time
			if r.cfg.Generation != nil {
				inc.ModelGeneration = r.cfg.Generation()
			}
			opened = true
		}
	}
	if s.Action == detect.ActionBlock {
		inc.BlockedAt = w.Time
		blocked = true
	}
	var snap Incident
	if opened || blocked {
		snap = cloneIncident(*inc)
	}
	if blocked {
		r.closeLocked(s.PID, st, "blocked", w.Time)
	}
	r.mu.Unlock()

	if opened {
		r.cfg.Events.LogPID(jobCtx(w.Job), eventlog.LevelWarn, "incident", "incident.open", s.PID,
			eventlog.F("incident_id", snap.ID),
			eventlog.F("probability", w.Probability),
			eventlog.F("model_generation", snap.ModelGeneration),
			eventlog.F("windows_before_flag", snap.WindowsTotal-1))
		if r.cfg.OnOpen != nil {
			r.cfg.OnOpen(snap)
		}
	}
	if blocked {
		r.cfg.Events.LogPID(jobCtx(w.Job), eventlog.LevelError, "incident", "incident.close", s.PID,
			eventlog.F("incident_id", snap.ID),
			eventlog.F("reason", "blocked"),
			eventlog.F("windows_total", snap.WindowsTotal),
			eventlog.F("max_probability", snap.MaxProbability))
	}
}

// DeviceFailure records a device-fault incident: one closed Incident of
// Kind "device" attributed to the failed drive's registry ID. The fleet
// layer calls it when a device fails so drive faults land in the same
// SOC-facing history as ransomware verdicts. It returns the recorded
// incident.
func (r *Recorder) DeviceFailure(deviceID, reason string) Incident {
	if r == nil {
		return Incident{}
	}
	r.mu.Lock()
	now := r.cfg.Clock()
	r.nextID++
	r.opened++
	inc := Incident{
		ID: r.nextID, Kind: "device", State: "closed",
		CloseReason: "device-failed", FailureReason: reason,
		FirstSeen: now, FlaggedAt: now, ClosedAt: now,
		Devices: []string{deviceID},
	}
	if r.cfg.Generation != nil {
		inc.ModelGeneration = r.cfg.Generation()
	}
	if len(r.closed) >= r.cfg.MaxClosed {
		drop := len(r.closed) - r.cfg.MaxClosed + 1
		r.closed = append(r.closed[:0], r.closed[drop:]...)
	}
	r.closed = append(r.closed, inc)
	r.mu.Unlock()
	r.cfg.Events.LogDevice(context.Background(), eventlog.LevelError, "incident", "incident.device_failure", deviceID,
		eventlog.F("incident_id", inc.ID),
		eventlog.F("reason", reason))
	if r.cfg.OnOpen != nil {
		r.cfg.OnOpen(cloneIncident(inc))
	}
	return cloneIncident(inc)
}

// SLOBreach records a service-level-objective breach: one closed Incident
// of Kind "slo" naming the violated objective and the burn rule that fired.
// The slo.Evaluator calls it when a paging burn-rate rule trips so budget
// exhaustion lands in the same SOC-facing history as ransomware verdicts
// and drive faults. It returns the recorded incident.
func (r *Recorder) SLOBreach(objective, rule, reason string) Incident {
	if r == nil {
		return Incident{}
	}
	r.mu.Lock()
	now := r.cfg.Clock()
	r.nextID++
	r.opened++
	inc := Incident{
		ID: r.nextID, Kind: "slo", State: "closed",
		CloseReason: "slo-breach", FailureReason: reason,
		Objective: objective,
		FirstSeen: now, FlaggedAt: now, ClosedAt: now,
	}
	if r.cfg.Generation != nil {
		inc.ModelGeneration = r.cfg.Generation()
	}
	if len(r.closed) >= r.cfg.MaxClosed {
		drop := len(r.closed) - r.cfg.MaxClosed + 1
		r.closed = append(r.closed[:0], r.closed[drop:]...)
	}
	r.closed = append(r.closed, inc)
	r.mu.Unlock()
	r.cfg.Events.Error(context.Background(), "incident", "incident.slo_breach",
		eventlog.F("incident_id", inc.ID),
		eventlog.F("objective", objective),
		eventlog.F("rule", rule),
		eventlog.F("reason", reason))
	if r.cfg.OnOpen != nil {
		r.cfg.OnOpen(cloneIncident(inc))
	}
	return cloneIncident(inc)
}

// Evict drops the process's tracking state: an open incident closes with
// reason "evicted" (a later reappearance of the PID opens a distinct
// incident); an unflagged candidate is discarded. Wire it to
// detect.MuxConfig.OnEvict.
func (r *Recorder) Evict(pid int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	st, ok := r.tracked[pid]
	if !ok {
		r.mu.Unlock()
		return
	}
	if !st.flagged {
		delete(r.tracked, pid)
		r.mu.Unlock()
		return
	}
	id := st.inc.ID
	r.closeLocked(pid, st, "evicted", r.cfg.Clock())
	r.mu.Unlock()
	r.cfg.Events.LogPID(context.Background(), eventlog.LevelInfo, "incident", "incident.close", pid,
		eventlog.F("incident_id", id),
		eventlog.F("reason", "evicted"))
}

// Flush closes every open incident with reason "flush" (shutdown) and
// discards unflagged candidates. It returns the full incident history, as
// Snapshot does.
func (r *Recorder) Flush() []Incident {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	now := r.cfg.Clock()
	type closing struct {
		pid int
		id  int64
	}
	var flushed []closing
	for pid, st := range r.tracked {
		if !st.flagged {
			delete(r.tracked, pid)
			continue
		}
		flushed = append(flushed, closing{pid: pid, id: st.inc.ID})
	}
	sort.Slice(flushed, func(i, j int) bool { return flushed[i].id < flushed[j].id })
	for _, c := range flushed {
		r.closeLocked(c.pid, r.tracked[c.pid], "flush", now)
	}
	out := r.snapshotLocked()
	r.mu.Unlock()
	for _, c := range flushed {
		r.cfg.Events.LogPID(context.Background(), eventlog.LevelInfo, "incident", "incident.close", c.pid,
			eventlog.F("incident_id", c.id),
			eventlog.F("reason", "flush"))
	}
	return out
}

// closeLocked moves an open incident to the closed ring. Caller holds r.mu
// and has verified st.flagged.
func (r *Recorder) closeLocked(pid int, st *state, reason string, at time.Time) {
	st.inc.State = "closed"
	st.inc.CloseReason = reason
	st.inc.ClosedAt = at
	delete(r.tracked, pid)
	if len(r.closed) >= r.cfg.MaxClosed {
		drop := len(r.closed) - r.cfg.MaxClosed + 1
		r.closed = append(r.closed[:0], r.closed[drop:]...)
	}
	r.closed = append(r.closed, st.inc)
}

// Snapshot returns the incident history — closed incidents in close order,
// then open incidents in flag order. The returned incidents are deep copies.
func (r *Recorder) Snapshot() []Incident {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

func (r *Recorder) snapshotLocked() []Incident {
	out := make([]Incident, 0, len(r.closed)+len(r.tracked))
	for _, inc := range r.closed {
		out = append(out, cloneIncident(inc))
	}
	var open []Incident
	for _, st := range r.tracked {
		if st.flagged {
			open = append(open, cloneIncident(st.inc))
		}
	}
	sort.Slice(open, func(i, j int) bool { return open[i].ID < open[j].ID })
	return append(out, open...)
}

// Open returns the number of currently open incidents.
func (r *Recorder) Open() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, st := range r.tracked {
		if st.flagged {
			n++
		}
	}
	return n
}

// Total counts incidents ever opened, including closed and dropped ones.
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opened
}

func cloneIncident(inc Incident) Incident {
	inc.Trajectory = append([]Window(nil), inc.Trajectory...)
	inc.Jobs = append([]int64(nil), inc.Jobs...)
	inc.Devices = append([]string(nil), inc.Devices...)
	return inc
}

func verdict(a detect.Action) string {
	switch a {
	case detect.ActionAlert:
		return "alert"
	case detect.ActionBlock:
		return "block"
	default:
		return "none"
	}
}

func containsJob(jobs []int64, j int64) bool {
	for _, x := range jobs {
		if x == j {
			return true
		}
	}
	return false
}

func containsDevice(devs []string, d string) bool {
	for _, x := range devs {
		if x == d {
			return true
		}
	}
	return false
}

func jobCtx(job int64) context.Context {
	if job == 0 {
		return context.Background()
	}
	return trace.WithJob(context.Background(), job)
}

// ErrNoIncidents is returned by WriteReports when there is nothing to write.
var ErrNoIncidents = errors.New("incident: no incidents recorded")
