package incident

import (
	"encoding/json"
	"net/http"
)

// HTTPHandler serves the incident history as JSON — the /incidents.json
// endpoint of the telemetry server. The document is:
//
//	{"total": N, "open": n, "incidents": [...]}
//
// where total counts incidents ever opened (including ones dropped from the
// bounded closed ring) and incidents is Snapshot's order: closed first,
// then open. Query parameter ?state=open or ?state=closed filters. A nil
// recorder serves a valid empty document.
func (r *Recorder) HTTPHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		state := req.URL.Query().Get("state")
		if state != "" && state != "open" && state != "closed" {
			http.Error(w, "state must be open or closed", http.StatusBadRequest)
			return
		}
		incidents := r.Snapshot()
		if state != "" {
			kept := incidents[:0]
			for _, inc := range incidents {
				if inc.State == state {
					kept = append(kept, inc)
				}
			}
			incidents = kept
		}
		if incidents == nil {
			incidents = []Incident{}
		}
		doc := struct {
			Total     int64      `json:"total"`
			Open      int        `json:"open"`
			Incidents []Incident `json:"incidents"`
		}{Total: r.Total(), Open: r.Open(), Incidents: incidents}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
}
