package incident

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/kfrida1/csdinf/internal/detect"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/kernels"
)

// itemPredictor classifies a window ransomware when its last item is at or
// above the hot threshold — a deterministic stand-in for the LSTM that lets
// tests script per-process verdicts through the call IDs they feed.
type itemPredictor struct {
	seqLen int
	hot    int
}

func (p *itemPredictor) Predict(ctx context.Context, seq []int) (kernels.Result, infer.Timing, error) {
	prob := 0.1
	if seq[len(seq)-1] >= p.hot {
		prob = 0.9
	}
	return kernels.Result{Ransomware: prob >= 0.5, Probability: prob}, infer.Timing{}, nil
}

func (p *itemPredictor) PredictStored(ctx context.Context, off int64) (kernels.Result, infer.Timing, error) {
	return kernels.Result{}, infer.Timing{}, infer.ErrNoStoredData
}

func (p *itemPredictor) SeqLen() int { return p.seqLen }

func sample(pid int, call int64, prob float64, action detect.Action, job int64, device string) detect.WindowSample {
	return detect.WindowSample{
		PID: pid, Time: time.Unix(0, call), CallIndex: call,
		Probability: prob, Action: action, Job: job, Device: device,
		QueueWait: 10, Transfer: 20, Compute: 30,
	}
}

func TestLifecycleBlocked(t *testing.T) {
	gen := int64(3)
	rec, err := NewRecorder(Config{Generation: func() int64 { return gen }})
	if err != nil {
		t.Fatal(err)
	}
	rec.Window(sample(7, 10, 0.1, detect.ActionNone, 101, "0"))
	if rec.Total() != 0 || rec.Open() != 0 {
		t.Fatalf("benign window opened an incident: total=%d open=%d", rec.Total(), rec.Open())
	}
	rec.Window(sample(7, 35, 0.8, detect.ActionAlert, 102, "1"))
	if rec.Total() != 1 || rec.Open() != 1 {
		t.Fatalf("alert did not open an incident: total=%d open=%d", rec.Total(), rec.Open())
	}
	rec.Window(sample(7, 60, 0.95, detect.ActionBlock, 103, "0"))
	if rec.Open() != 0 {
		t.Fatalf("block left the incident open")
	}

	incs := rec.Snapshot()
	if len(incs) != 1 {
		t.Fatalf("got %d incidents, want 1", len(incs))
	}
	inc := incs[0]
	if inc.ID != 1 || inc.PID != 7 || inc.State != "closed" || inc.CloseReason != "blocked" {
		t.Fatalf("unexpected incident: %+v", inc)
	}
	if inc.ModelGeneration != 3 {
		t.Fatalf("ModelGeneration = %d, want 3", inc.ModelGeneration)
	}
	if inc.WindowsTotal != 3 || inc.AlertsTotal != 2 || len(inc.Trajectory) != 3 {
		t.Fatalf("window accounting wrong: %+v", inc)
	}
	if inc.MaxProbability != 0.95 {
		t.Fatalf("MaxProbability = %v", inc.MaxProbability)
	}
	if inc.FirstSeen.UnixNano() != 10 || inc.FlaggedAt.UnixNano() != 35 || inc.BlockedAt.UnixNano() != 60 {
		t.Fatalf("timestamps wrong: %+v", inc)
	}
	if inc.ClosedAt.IsZero() {
		t.Fatal("ClosedAt not stamped")
	}
	wantJobs := []int64{101, 102, 103}
	if fmt.Sprint(inc.Jobs) != fmt.Sprint(wantJobs) {
		t.Fatalf("Jobs = %v, want %v", inc.Jobs, wantJobs)
	}
	if fmt.Sprint(inc.Devices) != fmt.Sprint([]string{"0", "1"}) {
		t.Fatalf("Devices = %v", inc.Devices)
	}
	if inc.QueueWaitTotal != 30 || inc.TransferTotal != 60 || inc.ComputeTotal != 90 {
		t.Fatalf("phase totals wrong: %+v", inc)
	}
	verdicts := []string{inc.Trajectory[0].Verdict, inc.Trajectory[1].Verdict, inc.Trajectory[2].Verdict}
	if fmt.Sprint(verdicts) != fmt.Sprint([]string{"none", "alert", "block"}) {
		t.Fatalf("trajectory verdicts = %v", verdicts)
	}
}

// TestOnOpenFiresOnEveryOpenPath pins the flight-recorder hook contract:
// OnOpen fires exactly once per opened incident — process flag, device
// failure, and SLO breach — with a deep copy carrying the incident ID.
func TestOnOpenFiresOnEveryOpenPath(t *testing.T) {
	var opened []Incident
	rec, err := NewRecorder(Config{OnOpen: func(inc Incident) { opened = append(opened, inc) }})
	if err != nil {
		t.Fatal(err)
	}
	rec.Window(sample(7, 10, 0.1, detect.ActionNone, 101, "0"))
	if len(opened) != 0 {
		t.Fatalf("benign window fired OnOpen: %+v", opened)
	}
	rec.Window(sample(7, 35, 0.8, detect.ActionAlert, 102, "1"))
	rec.Window(sample(7, 60, 0.9, detect.ActionAlert, 103, "1")) // same incident: no second fire
	rec.DeviceFailure("csd-002", "chaos")
	rec.SLOBreach("availability", "fast", "burn 20x")
	if len(opened) != 3 {
		t.Fatalf("OnOpen fired %d times, want 3 (flag, device, slo)", len(opened))
	}
	if opened[0].PID != 7 || opened[0].ID != 1 {
		t.Fatalf("flag open = %+v", opened[0])
	}
	if opened[1].Kind != "device" || opened[1].ID != 2 {
		t.Fatalf("device open = %+v", opened[1])
	}
	if opened[2].Kind != "slo" || opened[2].Objective != "availability" || opened[2].ID != 3 {
		t.Fatalf("slo open = %+v", opened[2])
	}
	// The callback got a copy: mutating it must not corrupt recorder state.
	opened[0].Trajectory = nil
	if rec.Open() != 1 {
		t.Fatalf("open incidents = %d, want the flagged process still open", rec.Open())
	}
}

func TestEvictClosesAndReflagOpensDistinctIncident(t *testing.T) {
	rec, err := NewRecorder(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec.Window(sample(9, 1, 0.9, detect.ActionAlert, 1, "0"))
	rec.Evict(9)
	if rec.Open() != 0 {
		t.Fatal("eviction left the incident open")
	}
	// The PID reappears: a fresh epoch, a distinct incident.
	rec.Window(sample(9, 2, 0.7, detect.ActionAlert, 2, "1"))
	incs := rec.Snapshot()
	if len(incs) != 2 {
		t.Fatalf("got %d incidents, want 2", len(incs))
	}
	if incs[0].ID == incs[1].ID {
		t.Fatalf("reflag reused incident ID %d", incs[0].ID)
	}
	if incs[0].CloseReason != "evicted" || incs[0].State != "closed" {
		t.Fatalf("first incident: %+v", incs[0])
	}
	if incs[1].State != "open" || incs[1].WindowsTotal != 1 {
		t.Fatalf("second incident inherited state: %+v", incs[1])
	}
	// Evicting an unflagged candidate is silent.
	rec.Window(sample(11, 3, 0.1, detect.ActionNone, 3, "0"))
	rec.Evict(11)
	rec.Evict(12) // untracked PID: no-op
	if got := len(rec.Snapshot()); got != 2 {
		t.Fatalf("candidate eviction leaked an incident: %d", got)
	}
}

func TestFlushClosesOpenIncidents(t *testing.T) {
	rec, err := NewRecorder(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec.Window(sample(1, 1, 0.9, detect.ActionAlert, 0, ""))
	rec.Window(sample(2, 2, 0.8, detect.ActionAlert, 0, ""))
	rec.Window(sample(3, 3, 0.1, detect.ActionNone, 0, ""))
	incs := rec.Flush()
	if len(incs) != 2 {
		t.Fatalf("got %d incidents, want 2", len(incs))
	}
	for _, inc := range incs {
		if inc.State != "closed" || inc.CloseReason != "flush" || inc.ClosedAt.IsZero() {
			t.Fatalf("flush did not close: %+v", inc)
		}
	}
	if rec.Open() != 0 || len(rec.Flush()) != 2 {
		t.Fatal("flush is not idempotent over history")
	}
}

func TestTrajectoryBounded(t *testing.T) {
	rec, err := NewRecorder(Config{MaxTrajectory: 4})
	if err != nil {
		t.Fatal(err)
	}
	rec.Window(sample(5, 0, 0.9, detect.ActionAlert, 0, ""))
	for i := int64(1); i < 10; i++ {
		rec.Window(sample(5, i, 0.2, detect.ActionNone, 0, ""))
	}
	inc := rec.Snapshot()[0]
	if len(inc.Trajectory) != 4 {
		t.Fatalf("trajectory len = %d, want 4", len(inc.Trajectory))
	}
	if inc.TrajectoryDropped != 6 {
		t.Fatalf("TrajectoryDropped = %d, want 6", inc.TrajectoryDropped)
	}
	if inc.WindowsTotal != 10 {
		t.Fatalf("WindowsTotal = %d, want 10", inc.WindowsTotal)
	}
	// Most recent windows retained.
	if inc.Trajectory[len(inc.Trajectory)-1].CallIndex != 9 {
		t.Fatalf("trajectory tail = %+v", inc.Trajectory[len(inc.Trajectory)-1])
	}
}

// TestMuxChurnEviction drives a real detect.Mux whose process cap forces
// the ransomware process's detector state out and back in, asserting the
// recorder yields two distinct incidents for the two tracking epochs with
// no lost or duplicated windows.
func TestMuxChurnEviction(t *testing.T) {
	pred := &itemPredictor{seqLen: 4, hot: 1000}
	rec, err := NewRecorder(Config{})
	if err != nil {
		t.Fatal(err)
	}
	mux, err := detect.NewMux(pred, detect.MuxConfig{
		Detector: detect.Config{
			Stride:        1,
			AlertsToBlock: 100, // keep mitigation out of the way: churn is the subject
			OnWindow:      rec.Window,
		},
		MaxProcesses: 2,
		OnEvict:      rec.Evict,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	feed := func(pid, item, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := mux.Observe(ctx, pid, item); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Epoch 1: the hot process fills its window and alerts on 3 windows
	// (calls 4..6 complete windows ending in a hot item).
	feed(100, 1500, 6)
	if rec.Open() != 1 {
		t.Fatalf("open = %d, want 1", rec.Open())
	}
	// Two benign processes churn the cap: PID 100 is now the idlest and is
	// evicted when 102 arrives.
	feed(101, 1, 4)
	feed(102, 2, 4)
	if open := rec.Open(); open != 0 {
		t.Fatalf("eviction did not close the incident: open = %d", open)
	}
	// Epoch 2: the hot process reappears (evicting 101), refills its
	// window from scratch, and alerts again.
	feed(100, 1500, 5)
	incs := rec.Snapshot()
	if len(incs) != 2 {
		t.Fatalf("got %d incidents, want 2: %+v", len(incs), incs)
	}
	first, second := incs[0], incs[1]
	if first.ID == second.ID {
		t.Fatal("epochs share an incident ID")
	}
	if first.PID != 100 || second.PID != 100 {
		t.Fatalf("PIDs: %d, %d", first.PID, second.PID)
	}
	if first.State != "closed" || first.CloseReason != "evicted" {
		t.Fatalf("first epoch: %+v", first)
	}
	if second.State != "open" {
		t.Fatalf("second epoch: %+v", second)
	}
	// No lost or duplicated windows: epoch 1 classified windows at calls
	// 4..6 (3 windows), epoch 2 refilled and classified at calls 4..5 of
	// its stream (2 windows).
	if first.WindowsTotal != 3 || len(first.Trajectory) != 3 {
		t.Fatalf("epoch 1 windows: %+v", first)
	}
	if second.WindowsTotal != 2 || len(second.Trajectory) != 2 {
		t.Fatalf("epoch 2 windows: %+v", second)
	}
	seen := map[int64]int{}
	for _, w := range append(append([]Window(nil), first.Trajectory...), second.Trajectory...) {
		seen[w.CallIndex]++
	}
	for idx, n := range seen {
		if n > 2 { // call indexes restart per epoch, so at most one per epoch
			t.Fatalf("call index %d appears %d times", idx, n)
		}
	}
}

// TestConcurrentWindows hammers the recorder from many goroutines — the
// shape of a multi-stream deployment where several Mux instances share one
// recorder — and checks nothing is lost (run with -race).
func TestConcurrentWindows(t *testing.T) {
	rec, err := NewRecorder(Config{MaxTrajectory: 64})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, windows = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < windows; i++ {
				act := detect.ActionNone
				if i == 50 {
					act = detect.ActionAlert
				}
				rec.Window(sample(pid, int64(i), 0.3, act, int64(pid*windows+i), "0"))
			}
		}(g + 1)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			rec.Snapshot()
			rec.Open()
		}
	}()
	wg.Wait()
	<-done
	if rec.Total() != goroutines {
		t.Fatalf("Total = %d, want %d", rec.Total(), goroutines)
	}
	for _, inc := range rec.Snapshot() {
		if inc.WindowsTotal != windows {
			t.Fatalf("pid %d lost windows: %d of %d", inc.PID, inc.WindowsTotal, windows)
		}
	}
}

func TestHTTPHandlerAndReports(t *testing.T) {
	rec, err := NewRecorder(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec.Window(sample(1, 1, 0.9, detect.ActionAlert, 11, "0"))
	rec.Window(sample(1, 2, 0.95, detect.ActionBlock, 12, "0"))
	rec.Window(sample(2, 3, 0.8, detect.ActionAlert, 13, "1"))

	srv := httptest.NewServer(rec.HTTPHandler())
	defer srv.Close()
	var doc struct {
		Total     int64      `json:"total"`
		Open      int        `json:"open"`
		Incidents []Incident `json:"incidents"`
	}
	get := func(url string) {
		t.Helper()
		resp, err := srv.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
	}
	get(srv.URL)
	if doc.Total != 2 || doc.Open != 1 || len(doc.Incidents) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	get(srv.URL + "?state=open")
	if len(doc.Incidents) != 1 || doc.Incidents[0].PID != 2 {
		t.Fatalf("open filter: %+v", doc.Incidents)
	}
	if resp, err := srv.Client().Get(srv.URL + "?state=bogus"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != 400 {
		t.Fatalf("bad state filter: status %d", resp.StatusCode)
	}

	// A nil recorder serves a valid empty document.
	var nilRec *Recorder
	nilSrv := httptest.NewServer(nilRec.HTTPHandler())
	defer nilSrv.Close()
	get(nilSrv.URL)
	if doc.Total != 0 || len(doc.Incidents) != 0 {
		t.Fatalf("nil recorder doc = %+v", doc)
	}

	dir := t.TempDir()
	n, err := rec.WriteReports(dir)
	if err != nil || n != 2 {
		t.Fatalf("WriteReports = %d, %v", n, err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "incident-1-pid1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var inc Incident
	if err := json.Unmarshal(data, &inc); err != nil {
		t.Fatal(err)
	}
	if inc.ID != 1 || inc.CloseReason != "blocked" || len(inc.Trajectory) != 2 {
		t.Fatalf("report round-trip: %+v", inc)
	}

	empty, err := NewRecorder(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.WriteReports(dir); err != ErrNoIncidents {
		t.Fatalf("empty WriteReports err = %v", err)
	}
}
