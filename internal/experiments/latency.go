package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/kfrida1/csdinf/internal/core"
	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/detect"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/sandbox"
)

// This file measures how *promptly* the deployed detector stops an
// infection — the quantity behind the paper's "promptly detect ransomware
// ... enabling effective and timely mitigation directly within the CSD"
// claim, which §IV asserts but does not tabulate.

// FamilyLatency is the detection latency for one ransomware family.
type FamilyLatency struct {
	Family string
	// Variants is the number of variants replayed.
	Variants int
	// Detected counts variants stopped before the trace ended.
	Detected int
	// MeanCalls / MaxCalls are the API-call counts from infection start to
	// mitigation across detected variants.
	MeanCalls float64
	MaxCalls  int64
}

// LatencyConfig controls the detection-latency experiment.
type LatencyConfig struct {
	// Model is the trained classifier (train one with RunTraining first).
	Model *lstm.Model
	// TraceLen is the infected trace length replayed per variant; 0
	// defaults to 3000.
	TraceLen int
	// BenignPrefix is the benign desktop activity replayed before each
	// infection; 0 defaults to 400 calls.
	BenignPrefix int
	// Window is the classification window length; 0 defaults to the
	// paper's 100.
	Window int
	// Seed drives trace generation.
	Seed int64
}

// DetectionLatency replays every variant of every family against a freshly
// deployed detector and reports per-family time-to-mitigation.
func DetectionLatency(cfg LatencyConfig) ([]FamilyLatency, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("experiments: latency needs a trained model")
	}
	if cfg.TraceLen == 0 {
		cfg.TraceLen = 3000
	}
	if cfg.BenignPrefix == 0 {
		cfg.BenignPrefix = 400
	}
	if cfg.Window == 0 {
		cfg.Window = 100
	}

	var out []FamilyLatency
	for _, fam := range sandbox.Families {
		row := FamilyLatency{Family: fam.Name, Variants: fam.Variants}
		var sum int64
		for v := 0; v < fam.Variants; v++ {
			calls, detected, err := replayVariantWindow(cfg, fam.Name, v, cfg.Window)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s.v%d: %w", fam.Name, v, err)
			}
			if detected {
				row.Detected++
				sum += calls
				if calls > row.MaxCalls {
					row.MaxCalls = calls
				}
			}
		}
		if row.Detected > 0 {
			row.MeanCalls = float64(sum) / float64(row.Detected)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Family < out[j].Family })
	return out, nil
}

// replayVariantWindow runs one infection against a fresh detector deployed
// at the given window length and returns the number of ransomware API
// calls executed before mitigation.
func replayVariantWindow(cfg LatencyConfig, family string, variant, window int) (int64, bool, error) {
	if cfg.TraceLen == 0 {
		cfg.TraceLen = 3000
	}
	if cfg.BenignPrefix == 0 {
		cfg.BenignPrefix = 400
	}
	dev, err := csd.New(csd.Config{})
	if err != nil {
		return 0, false, err
	}
	eng, err := core.Deploy(dev, cfg.Model, core.DeployConfig{SeqLen: window})
	if err != nil {
		return 0, false, err
	}
	det, err := detect.New(eng, detect.Config{})
	if err != nil {
		return 0, false, err
	}

	benign, err := sandbox.ManualInteractionProfile().Generate(cfg.BenignPrefix, cfg.Seed)
	if err != nil {
		return 0, false, err
	}
	prof, err := sandbox.RansomwareProfile(family, variant)
	if err != nil {
		return 0, false, err
	}
	infected, err := prof.Generate(cfg.TraceLen, cfg.Seed+int64(variant)+1)
	if err != nil {
		return 0, false, err
	}

	for _, call := range benign {
		if _, err := det.Observe(context.Background(), call); err != nil {
			return 0, false, err
		}
	}
	if det.Blocked() {
		// False-positive block on the benign prefix: count as undetected
		// for latency purposes (it never saw the infection).
		return 0, false, nil
	}
	for i, call := range infected {
		ev, err := det.Observe(context.Background(), call)
		if err != nil {
			return 0, false, err
		}
		if ev != nil && ev.Action == detect.ActionBlock {
			return int64(i + 1), true, nil
		}
	}
	return 0, false, nil
}

// FormatDetectionLatency renders the per-family latency table.
func FormatDetectionLatency(rows []FamilyLatency, traceLen int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %10s %14s %12s\n",
		"Family", "Variants", "Detected", "Mean calls", "Max calls")
	var totalVars, totalDet int
	var weighted float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10d %10d %14.0f %12d\n",
			r.Family, r.Variants, r.Detected, r.MeanCalls, r.MaxCalls)
		totalVars += r.Variants
		totalDet += r.Detected
		weighted += r.MeanCalls * float64(r.Detected)
	}
	if totalDet > 0 {
		fmt.Fprintf(&b, "All: %d/%d variants stopped, mean %.0f calls into the infection (trace %d calls)\n",
			totalDet, totalVars, weighted/float64(totalDet), traceLen)
	}
	return b.String()
}
