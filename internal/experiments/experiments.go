// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV): Fig. 3 (kernel optimization study), Table I (FPGA vs
// CPU vs GPU), Fig. 4 (training convergence), the §IV detection metrics,
// and Table II (dataset overview). Each experiment returns structured rows
// carrying both the measured value and the paper's reported value, so
// cmd/csdbench and EXPERIMENTS.md can show the comparison directly.
package experiments

import (
	"fmt"
	"strings"

	"github.com/kfrida1/csdinf/internal/baseline"
	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/energy"
	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/metrics"
	"github.com/kfrida1/csdinf/internal/sandbox"
	"github.com/kfrida1/csdinf/internal/train"
)

// PaperFig3 holds the µs values read from the paper's Fig. 3, indexed by
// optimization level as [preprocess, gates, hidden_state].
var PaperFig3 = map[kernels.OptLevel][3]float64{
	kernels.LevelVanilla:    {0.74, 5.076, 1.651},
	kernels.LevelII:         {0.743, 2.001, 1.277},
	kernels.LevelFixedPoint: {0.8, 0.00333, 1.348},
}

// Paper Table I values (µs).
const (
	PaperFPGAMeanUS   = 2.15133
	PaperCPUMeanUS    = 991.5775
	PaperCPUCILowUS   = 217.46576
	PaperCPUCIHighUS  = 1765.68923
	PaperGPUMeanUS    = 741.35336
	PaperGPUCILowUS   = 394.45317
	PaperGPUCIHighUS  = 1088.25355
	PaperSpeedupVsGPU = 344.6
)

// Paper §IV detection metrics.
var PaperDetection = metrics.Scores{
	Accuracy:  0.9833,
	Precision: 0.9789,
	Recall:    0.9890,
	F1:        0.9840,
}

// Fig3Row is one optimization level of the kernel study.
type Fig3Row struct {
	Level        kernels.OptLevel
	PreprocessUS float64
	GatesUS      float64
	HiddenUS     float64
	TotalUS      float64
	// Paper values for the same level.
	Paper      [3]float64
	PaperTotal float64
}

// Fig3 deploys the paper's model at each optimization level on the U200 and
// reports the per-kernel per-item latencies of Fig. 3.
func Fig3() ([]Fig3Row, error) {
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	rows := make([]Fig3Row, 0, len(kernels.Levels))
	for _, lv := range kernels.Levels {
		p, err := kernels.New(m, kernels.Config{Level: lv, Part: fpga.AlveoU200})
		if err != nil {
			return nil, fmt.Errorf("experiments: level %s: %w", lv, err)
		}
		pre, g, h, tot := p.KernelMicros()
		paper := PaperFig3[lv]
		rows = append(rows, Fig3Row{
			Level: lv, PreprocessUS: pre, GatesUS: g, HiddenUS: h, TotalUS: tot,
			Paper: paper, PaperTotal: paper[0] + paper[1] + paper[2],
		})
	}
	return rows, nil
}

// FormatFig3 renders the rows as an aligned text table.
func FormatFig3(rows []Fig3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %14s %14s %14s %12s\n", "Level", "Preprocess", "Gates", "Hidden_state", "Total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8.3f µs %13.5f µs %10.3f µs %8.3f µs\n",
			r.Level, r.PreprocessUS, r.GatesUS, r.HiddenUS, r.TotalUS)
		fmt.Fprintf(&b, "%-12s %8.3f    %13.5f    %10.3f    %8.3f    (paper)\n",
			"", r.Paper[0], r.Paper[1], r.Paper[2], r.PaperTotal)
	}
	return b.String()
}

// TableIConfig controls the hardware-comparison experiment.
type TableIConfig struct {
	// Trials is the number of per-item latency samples for the CPU and GPU
	// rows; 0 defaults to 1000.
	Trials int
	// Seed drives the baseline latency models.
	Seed int64
	// MeasureGo additionally measures the plain-Go forward pass on this
	// machine (an honesty reference absent from the paper).
	MeasureGo bool
}

// TableIRow is one platform of Table I.
type TableIRow struct {
	Platform    string
	MeanUS      float64
	CILowUS     float64
	CIHighUS    float64
	HasCI       bool
	PaperMeanUS float64 // 0 when the paper has no corresponding row
}

// TableIResult is the complete hardware comparison.
type TableIResult struct {
	Rows []TableIRow
	// SpeedupVsGPU is GPU mean / FPGA per-item time (paper: 344.6×).
	SpeedupVsGPU float64
	// SpeedupVsCPU is CPU mean / FPGA per-item time.
	SpeedupVsCPU float64
}

// TableI reproduces the paper's hardware comparison: the FPGA per-item
// latency from the fully-optimized pipeline (deterministic, like the
// paper's emulation-mode figure), and CPU/GPU rows sampled from the
// calibrated framework-overhead models with 95% spread intervals.
func TableI(cfg TableIConfig) (*TableIResult, error) {
	if cfg.Trials == 0 {
		cfg.Trials = 1000
	}
	if cfg.Trials < 0 {
		return nil, fmt.Errorf("experiments: negative trials %d", cfg.Trials)
	}
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	pipe, err := kernels.New(m, kernels.Config{Level: kernels.LevelFixedPoint, Part: fpga.AlveoU200})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	_, _, _, fpgaUS := pipe.KernelMicros()

	res := &TableIResult{}
	res.Rows = append(res.Rows, TableIRow{
		Platform: "FPGA (CSD)", MeanUS: fpgaUS, PaperMeanUS: PaperFPGAMeanUS,
	})

	for _, plat := range []struct {
		model     baseline.FrameworkModel
		paperMean float64
	}{
		{baseline.CPUXeon, PaperCPUMeanUS},
		{baseline.GPUA100, PaperGPUMeanUS},
	} {
		sample, err := plat.model.SampleTrials(cfg.Trials, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", plat.model.Name, err)
		}
		s, err := metrics.Summarize(sample)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", plat.model.Name, err)
		}
		low, high, err := metrics.SpreadCI(sample)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", plat.model.Name, err)
		}
		res.Rows = append(res.Rows, TableIRow{
			Platform: plat.model.Name, MeanUS: s.Mean,
			CILowUS: low, CIHighUS: high, HasCI: true,
			PaperMeanUS: plat.paperMean,
		})
	}

	if cfg.MeasureGo {
		seq := make([]int, 100)
		for i := range seq {
			seq[i] = i % m.Config().VocabSize
		}
		sample, err := baseline.MeasureGoCPU(m, seq, max(cfg.Trials/10, 5))
		if err != nil {
			return nil, fmt.Errorf("experiments: go baseline: %w", err)
		}
		s, err := metrics.Summarize(sample)
		if err != nil {
			return nil, fmt.Errorf("experiments: go baseline: %w", err)
		}
		low, high, err := metrics.SpreadCI(sample)
		if err != nil {
			return nil, fmt.Errorf("experiments: go baseline: %w", err)
		}
		res.Rows = append(res.Rows, TableIRow{
			Platform: "CPU (plain Go, measured here)", MeanUS: s.Mean,
			CILowUS: low, CIHighUS: high, HasCI: true,
		})
	}

	res.SpeedupVsGPU = res.Rows[2].MeanUS / fpgaUS
	res.SpeedupVsCPU = res.Rows[1].MeanUS / fpgaUS
	return res, nil
}

// FormatTableI renders the comparison as an aligned text table.
func FormatTableI(res *TableIResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %16s %30s %14s\n", "Platform", "Execution time", "95% CI", "Paper")
	for _, r := range res.Rows {
		ci := "N/A"
		if r.HasCI {
			ci = fmt.Sprintf("%.5f µs - %.5f µs", r.CILowUS, r.CIHighUS)
		}
		paper := "-"
		if r.PaperMeanUS > 0 {
			paper = fmt.Sprintf("%.5f µs", r.PaperMeanUS)
		}
		fmt.Fprintf(&b, "%-32s %13.5f µs %30s %14s\n", r.Platform, r.MeanUS, ci, paper)
	}
	fmt.Fprintf(&b, "FPGA speedup vs GPU: %.1f× (paper: %.1f×); vs CPU: %.1f×\n",
		res.SpeedupVsGPU, PaperSpeedupVsGPU, res.SpeedupVsCPU)
	return b.String()
}

// TrainRunConfig controls the Fig. 4 / detection-metrics training run.
type TrainRunConfig struct {
	// RansomwareCount and BenignCount scale the synthetic corpus. Zero
	// defaults to a 1/10-scale paper corpus (1334/1566): the paper's full
	// 29K corpus trains identically but takes ~10× longer in pure Go.
	RansomwareCount int
	BenignCount     int
	// Window and Stride control extraction; zero defaults to 100/25.
	Window, Stride int
	// TestFraction is the held-out share; 0 defaults to 0.2.
	TestFraction float64
	// Epochs, BatchSize, LR, Seed forward to the trainer (zero = defaults).
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
	// TargetAccuracy stops early; 0 = run all epochs.
	TargetAccuracy float64
}

// TrainRun is the outcome of the training experiment, serving both Fig. 4
// (History) and the §IV metrics (Final).
type TrainRun struct {
	*train.Result
	TrainSize, TestSize int
	Dataset             *dataset.Dataset
}

// RunTraining builds the corpus, splits it, and trains to convergence.
func RunTraining(cfg TrainRunConfig) (*TrainRun, error) {
	if cfg.RansomwareCount == 0 {
		cfg.RansomwareCount = dataset.PaperRansomwareCount / 10
	}
	if cfg.BenignCount == 0 {
		cfg.BenignCount = dataset.PaperBenignCount / 10
	}
	if cfg.TestFraction == 0 {
		cfg.TestFraction = 0.2
	}
	ds, err := dataset.Build(dataset.BuildConfig{
		RansomwareCount: cfg.RansomwareCount,
		BenignCount:     cfg.BenignCount,
		Window:          cfg.Window,
		Stride:          cfg.Stride,
		Seed:            cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: build corpus: %w", err)
	}
	trainDS, testDS, err := ds.Split(cfg.TestFraction, cfg.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("experiments: split: %w", err)
	}
	res, err := train.Train(trainDS, testDS, train.Config{
		Epochs:         cfg.Epochs,
		BatchSize:      cfg.BatchSize,
		LR:             cfg.LR,
		Seed:           cfg.Seed,
		TargetAccuracy: cfg.TargetAccuracy,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: train: %w", err)
	}
	return &TrainRun{
		Result:    res,
		TrainSize: len(trainDS.Sequences),
		TestSize:  len(testDS.Sequences),
		Dataset:   ds,
	}, nil
}

// FormatFig4 renders the convergence trajectory.
func FormatFig4(run *TrainRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Training convergence (%d train / %d test sequences)\n", run.TrainSize, run.TestSize)
	fmt.Fprintf(&b, "%8s %12s %10s %10s %10s %10s\n", "Epoch", "TrainLoss", "Accuracy", "Precision", "Recall", "F1")
	for _, rec := range run.History {
		fmt.Fprintf(&b, "%8d %12.4f %10.4f %10.4f %10.4f %10.4f\n",
			rec.Epoch, rec.TrainLoss, rec.Test.Accuracy, rec.Test.Precision, rec.Test.Recall, rec.Test.F1)
	}
	best, epoch := run.BestAccuracy()
	fmt.Fprintf(&b, "Peak accuracy %.4f at epoch %d (paper: %.4f at ~4K epochs)\n",
		best, epoch, PaperDetection.Accuracy)
	return b.String()
}

// FormatMetrics renders the §IV detection metrics next to the paper's.
func FormatMetrics(run *TrainRun) string {
	var b strings.Builder
	f := run.Final
	fmt.Fprintf(&b, "%12s %10s %10s\n", "Metric", "Measured", "Paper")
	fmt.Fprintf(&b, "%12s %10.4f %10.4f\n", "Accuracy", f.Accuracy, PaperDetection.Accuracy)
	fmt.Fprintf(&b, "%12s %10.4f %10.4f\n", "Precision", f.Precision, PaperDetection.Precision)
	fmt.Fprintf(&b, "%12s %10.4f %10.4f\n", "Recall", f.Recall, PaperDetection.Recall)
	fmt.Fprintf(&b, "%12s %10.4f %10.4f\n", "F1", f.F1, PaperDetection.F1)
	fmt.Fprintf(&b, "Confusion: %s\n", run.FinalConfusion.String())
	return b.String()
}

// TableIIRow is one family of the dataset overview.
type TableIIRow struct {
	Family         string
	Instances      int
	Encrypts       bool
	SelfPropagates bool
	// Windows counts this family's sequences in the generated corpus.
	Windows int
}

// TableII summarizes the ransomware corpus per family, mirroring the
// paper's Table II, with window counts from the provided dataset (nil is
// allowed: counts are then omitted).
func TableII(ds *dataset.Dataset) []TableIIRow {
	perSource := map[string]int{}
	if ds != nil {
		perSource = ds.SourceCounts()
	}
	rows := make([]TableIIRow, 0, len(sandbox.Families))
	for _, fam := range sandbox.Families {
		windows := 0
		for src, n := range perSource {
			if strings.HasPrefix(src, fam.Name+".") {
				windows += n
			}
		}
		rows = append(rows, TableIIRow{
			Family:         fam.Name,
			Instances:      fam.Variants,
			Encrypts:       fam.Encrypts,
			SelfPropagates: fam.SelfPropagates,
			Windows:        windows,
		})
	}
	return rows
}

// FormatTableII renders the dataset overview.
func FormatTableII(rows []TableIIRow, ds *dataset.Dataset) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %12s %18s %10s\n", "Family", "Instances", "Encryption", "Self-propagation", "Windows")
	mark := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	totalVariants, totalWindows := 0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10d %12s %18s %10d\n",
			r.Family, r.Instances, mark(r.Encrypts), mark(r.SelfPropagates), r.Windows)
		totalVariants += r.Instances
		totalWindows += r.Windows
	}
	fmt.Fprintf(&b, "Total: %d variants, %d ransomware windows", totalVariants, totalWindows)
	if ds != nil {
		r, ben := ds.Counts()
		fmt.Fprintf(&b, "; corpus %d sequences (%d ransomware / %d benign, %.0f%% ransomware)",
			len(ds.Sequences), r, ben, ds.RansomwareFraction()*100)
	}
	b.WriteString("\n")
	return b.String()
}

// EnergyRow is one platform of the energy-per-inference comparison.
type EnergyRow = energy.Estimate

// EnergyResult is the energy comparison behind the paper's efficiency
// claims (§I, §VII): the CSD wins on power and latency simultaneously.
type EnergyResult struct {
	Rows []EnergyRow
	// SavingsVsCPU and SavingsVsGPU are the CSD's energy-per-item
	// advantage.
	SavingsVsCPU float64
	SavingsVsGPU float64
}

// Energy builds the three-platform energy comparison from the deployed
// fixed-point design and the Table I latencies.
func Energy() (*EnergyResult, error) {
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	pipe, err := kernels.New(m, kernels.Config{Level: kernels.LevelFixedPoint, Part: fpga.AlveoU200})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	_, _, _, fpgaUS := pipe.KernelMicros()
	rows, err := energy.Compare(pipe.Device().Used(), fpgaUS, PaperCPUMeanUS, PaperGPUMeanUS)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return &EnergyResult{
		Rows:         rows,
		SavingsVsCPU: energy.SavingsVs(rows[0], rows[1]),
		SavingsVsGPU: energy.SavingsVs(rows[0], rows[2]),
	}, nil
}

// FormatEnergy renders the energy comparison.
func FormatEnergy(res *EnergyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s %16s %16s\n", "Platform", "Power", "Latency/item", "Energy/item")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%-24s %8.1f W %13.3f µs %13.2f µJ\n",
			r.Platform, r.Watts, r.LatencyUS, r.MicroJoules)
	}
	fmt.Fprintf(&b, "CSD energy savings: %.0f× vs CPU, %.0f× vs GPU\n",
		res.SavingsVsCPU, res.SavingsVsGPU)
	return b.String()
}

// ModelSelectionResult compares the LSTM against the non-sequential
// snapshot baseline of §III-A's model-selection argument.
type ModelSelectionResult struct {
	LSTM      metrics.Scores
	Histogram metrics.Scores
	// AccuracyGap is LSTM accuracy minus histogram accuracy.
	AccuracyGap float64
}

// ModelSelection trains both models on the same split and compares them —
// the measurement behind the paper's claim that sequential models suit
// this task better than static-snapshot ones.
func ModelSelection(run *TrainRun, testDS *dataset.Dataset, seed int64) (*ModelSelectionResult, error) {
	if run == nil || run.Model == nil {
		return nil, fmt.Errorf("experiments: model selection needs a trained LSTM run")
	}
	trainDS, heldOut, err := run.Dataset.Split(0.2, seed+1)
	if err != nil {
		return nil, err
	}
	if testDS != nil {
		heldOut = testDS
	}
	hist, err := baseline.NewHistogramClassifier(run.Model.Config().VocabSize)
	if err != nil {
		return nil, err
	}
	if err := hist.Train(trainDS, baseline.HistTrainConfig{Epochs: 30, Seed: seed}); err != nil {
		return nil, err
	}
	histConf, err := hist.Evaluate(heldOut)
	if err != nil {
		return nil, err
	}
	lstmConf, err := train.Evaluate(run.Model, heldOut)
	if err != nil {
		return nil, err
	}
	return &ModelSelectionResult{
		LSTM:        lstmConf.Scores(),
		Histogram:   histConf.Scores(),
		AccuracyGap: lstmConf.Accuracy() - histConf.Accuracy(),
	}, nil
}

// FormatModelSelection renders the comparison.
func FormatModelSelection(res *ModelSelectionResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s %10s %10s %10s\n", "Model", "Accuracy", "Precision", "Recall", "F1")
	fmt.Fprintf(&b, "%-28s %10.4f %10.4f %10.4f %10.4f\n",
		"LSTM (sequential)", res.LSTM.Accuracy, res.LSTM.Precision, res.LSTM.Recall, res.LSTM.F1)
	fmt.Fprintf(&b, "%-28s %10.4f %10.4f %10.4f %10.4f\n",
		"Histogram LR (snapshot)", res.Histogram.Accuracy, res.Histogram.Precision, res.Histogram.Recall, res.Histogram.F1)
	fmt.Fprintf(&b, "LSTM accuracy advantage: %+.4f\n", res.AccuracyGap)
	return b.String()
}
