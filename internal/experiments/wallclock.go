package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/kfrida1/csdinf/internal/core"
	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/prof"
	"github.com/kfrida1/csdinf/internal/serve"
	"github.com/kfrida1/csdinf/internal/telemetry"
	"github.com/kfrida1/csdinf/internal/trace"
)

// This file is the observability-overhead self-audit: the same serialized
// serve→engine workload run twice — once with the full observability stack
// (telemetry registry, span log, tracer, event log, continuous profiler with
// per-stage allocation counting) and once with every collaborator nil — and
// the host wall-clock and allocation cost per request compared. The paper
// claims CSD inference frees host resources; this experiment keeps the
// repo honest about how much host the *instrumentation* takes back, and
// feeds the wallclock regression gate (BENCH_wallclock.json, diffed by
// cmd/benchdiff against bench-results/baseline-wallclock.json).

// WallClockConfig controls the self-audit.
type WallClockConfig struct {
	// Iterations is the measured request count per leg; 0 defaults to 2000.
	Iterations int
	// Warmup requests run before measurement on each leg; 0 defaults to 200.
	Warmup int
	// Seed drives model initialization; 0 defaults to 1.
	Seed int64
}

// WallClockLeg is one measured configuration.
type WallClockLeg struct {
	// NSPerOp is host wall-clock per request, serialized (enqueue through
	// response, including the worker handoff).
	NSPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap allocation costs per request,
	// measured from runtime.MemStats deltas across the serialized loop.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// WallClockResult is the audit outcome.
type WallClockResult struct {
	Iterations int `json:"iterations"`
	// Instrumented is the fully-observed leg; Bare is the Observability:
	// off leg (every telemetry/trace/eventlog/prof collaborator nil).
	Instrumented WallClockLeg `json:"instrumented"`
	Bare         WallClockLeg `json:"bare"`
	// OverheadPercent is the instrumented wall-clock premium over bare:
	// (instrumented - bare) / bare × 100. Small negative values mean the
	// premium drowned in scheduler noise.
	OverheadPercent float64 `json:"overhead_percent"`
	// AllocOverheadPerOp is the allocation premium per request.
	AllocOverheadPerOp float64 `json:"alloc_overhead_per_op"`
	// StageNSPerOp is the instrumented leg's mean host cost per pipeline
	// stage (queue, encode, transfer, compute, observe), from the
	// profiler's breakdown aggregates. The "observe" stage prices the
	// telemetry/trace/eventlog record calls themselves.
	StageNSPerOp map[string]float64 `json:"stage_ns_per_op,omitempty"`
}

// WallClock runs the observability self-audit and returns both legs plus
// the overhead attribution.
func WallClock(cfg WallClockConfig) (*WallClockResult, error) {
	if cfg.Iterations == 0 {
		cfg.Iterations = 2000
	}
	if cfg.Iterations < 0 {
		return nil, fmt.Errorf("experiments: negative iterations %d", cfg.Iterations)
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 200
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	m, err := lstm.NewModel(lstm.PaperConfig(), cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: wallclock: %w", err)
	}
	seq := make([]int, 100)
	for i := range seq {
		seq[i] = i % m.Config().VocabSize
	}

	res := &WallClockResult{Iterations: cfg.Iterations}

	// Instrumented leg first (the order is irrelevant to the deltas; each
	// leg builds a fresh stack and forces a GC before measuring).
	instr, stages, err := wallClockLeg(m, seq, cfg, true)
	if err != nil {
		return nil, err
	}
	bare, _, err := wallClockLeg(m, seq, cfg, false)
	if err != nil {
		return nil, err
	}
	res.Instrumented, res.Bare, res.StageNSPerOp = instr, bare, stages
	if bare.NSPerOp > 0 {
		res.OverheadPercent = (instr.NSPerOp - bare.NSPerOp) / bare.NSPerOp * 100
	}
	res.AllocOverheadPerOp = instr.AllocsPerOp - bare.AllocsPerOp
	return res, nil
}

// wallClockLeg deploys a single-device serve stack — fully observed or fully
// bare — and measures the serialized request loop.
func wallClockLeg(m *lstm.Model, seq []int, cfg WallClockConfig, observed bool) (WallClockLeg, map[string]float64, error) {
	var (
		reg      *telemetry.Registry
		spans    *telemetry.SpanLog
		events   *eventlog.Logger
		tracer   *trace.Tracer
		profiler *prof.Profiler
	)
	if observed {
		reg = telemetry.NewRegistry()
		spans = telemetry.NewSpanLog(256)
		events = eventlog.New(eventlog.Config{})
		defer events.Close()
		tracer = trace.New()
		var err error
		// Manual sampling and untouched global profile rates: the audit
		// measures the request-path instrumentation, not the sampler tick,
		// and must not perturb other profilers in the same process.
		profiler, err = prof.New(prof.Config{
			SampleEvery: -1, MutexFraction: -1, BlockRateNS: -1,
			CountAllocs: true, Telemetry: reg, Events: events,
		})
		if err != nil {
			return WallClockLeg{}, nil, fmt.Errorf("experiments: wallclock: %w", err)
		}
		defer profiler.Close()
	}
	dev, err := csd.New(csd.Config{})
	if err != nil {
		return WallClockLeg{}, nil, fmt.Errorf("experiments: wallclock: %w", err)
	}
	eng, err := core.Deploy(dev, m, core.DeployConfig{
		SeqLen: len(seq), Telemetry: reg, Trace: tracer, Events: events,
	})
	if err != nil {
		return WallClockLeg{}, nil, fmt.Errorf("experiments: wallclock: %w", err)
	}
	srv, err := serve.New([]infer.Inferencer{eng}, serve.Config{
		Telemetry: reg, Spans: spans, Trace: tracer, Events: events, Prof: profiler,
	})
	if err != nil {
		return WallClockLeg{}, nil, fmt.Errorf("experiments: wallclock: %w", err)
	}
	defer srv.Close()

	ctx := context.Background()
	for i := 0; i < cfg.Warmup; i++ {
		if _, _, err := srv.Predict(ctx, seq); err != nil {
			return WallClockLeg{}, nil, fmt.Errorf("experiments: wallclock warmup: %w", err)
		}
	}
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for i := 0; i < cfg.Iterations; i++ {
		if _, _, err := srv.Predict(ctx, seq); err != nil {
			return WallClockLeg{}, nil, fmt.Errorf("experiments: wallclock: %w", err)
		}
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&ms1)

	n := float64(cfg.Iterations)
	leg := WallClockLeg{
		NSPerOp:     float64(wall.Nanoseconds()) / n,
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / n,
		BytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / n,
	}
	var stages map[string]float64
	if profiler != nil {
		stages = make(map[string]float64)
		for _, s := range profiler.Snapshot().Stages {
			stages[s.Stage] = s.MeanNS
		}
	}
	return leg, stages, nil
}

// FormatWallClock renders the audit as an aligned text table.
func FormatWallClock(res *WallClockResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %14s %14s %14s\n", "Leg", "ns/op", "allocs/op", "B/op")
	fmt.Fprintf(&b, "%-24s %14.0f %14.1f %14.0f\n", "observability on",
		res.Instrumented.NSPerOp, res.Instrumented.AllocsPerOp, res.Instrumented.BytesPerOp)
	fmt.Fprintf(&b, "%-24s %14.0f %14.1f %14.0f\n", "observability off",
		res.Bare.NSPerOp, res.Bare.AllocsPerOp, res.Bare.BytesPerOp)
	fmt.Fprintf(&b, "overhead: %+.1f%% wall-clock, %+.1f allocs/op (%d iterations)\n",
		res.OverheadPercent, res.AllocOverheadPerOp, res.Iterations)
	if len(res.StageNSPerOp) > 0 {
		fmt.Fprintf(&b, "instrumented stage means:")
		for _, stage := range []string{"queue", "encode", "transfer", "compute", "verdict", "observe"} {
			if ns, ok := res.StageNSPerOp[stage]; ok {
				fmt.Fprintf(&b, " %s=%.0fns", stage, ns)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
