package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/kfrida1/csdinf/internal/kernels"
)

func TestFig3ShapeMatchesPaper(t *testing.T) {
	rows, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 levels", len(rows))
	}
	byLevel := map[kernels.OptLevel]Fig3Row{}
	for _, r := range rows {
		byLevel[r.Level] = r
		if math.Abs(r.TotalUS-(r.PreprocessUS+r.GatesUS+r.HiddenUS)) > 1e-9 {
			t.Errorf("%v total inconsistent", r.Level)
		}
	}
	v, ii, fx := byLevel[kernels.LevelVanilla], byLevel[kernels.LevelII], byLevel[kernels.LevelFixedPoint]
	// Headline shape assertions from the paper's prose.
	if !(v.TotalUS > ii.TotalUS && ii.TotalUS > fx.TotalUS) {
		t.Errorf("totals not monotone: %v %v %v", v.TotalUS, ii.TotalUS, fx.TotalUS)
	}
	if fx.GatesUS > 0.05 {
		t.Errorf("fixed-point gates = %v µs, should be near zero", fx.GatesUS)
	}
	// "II minimization reduced the execution time of kernel_hidden_state by
	// a relatively wide margin".
	if ii.HiddenUS >= v.HiddenUS {
		t.Errorf("II did not reduce hidden_state: %v vs %v", ii.HiddenUS, v.HiddenUS)
	}
	// "the execution time of kernel_preprocess remained fairly fixed".
	if math.Abs(v.PreprocessUS-ii.PreprocessUS) > 0.1 {
		t.Errorf("preprocess moved Vanilla→II: %v vs %v", v.PreprocessUS, ii.PreprocessUS)
	}
	// Total reduction factor ~3.3-3.5× (7.15→2.15 in the paper).
	if ratio := v.TotalUS / fx.TotalUS; ratio < 2.8 || ratio > 4.0 {
		t.Errorf("total reduction = %.2f×, paper ~3.4×", ratio)
	}
}

func TestFormatFig3(t *testing.T) {
	rows, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	out := FormatFig3(rows)
	for _, want := range []string{"Vanilla", "II", "Fixed-point", "paper", "Gates"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatFig3 missing %q:\n%s", want, out)
		}
	}
}

func TestTableIOrderingAndSpeedup(t *testing.T) {
	res, err := TableI(TableIConfig{Trials: 2000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	fpga, cpu, gpu := res.Rows[0], res.Rows[1], res.Rows[2]
	if !(fpga.MeanUS < gpu.MeanUS && gpu.MeanUS < cpu.MeanUS) {
		t.Fatalf("ordering broken: FPGA %v GPU %v CPU %v", fpga.MeanUS, gpu.MeanUS, cpu.MeanUS)
	}
	if fpga.HasCI {
		t.Error("FPGA row should have no CI (emulation mode), like the paper")
	}
	if !cpu.HasCI || !gpu.HasCI {
		t.Error("CPU/GPU rows must carry CIs")
	}
	// Speedup within 20% of the paper's 344.6×.
	if rel := math.Abs(res.SpeedupVsGPU-PaperSpeedupVsGPU) / PaperSpeedupVsGPU; rel > 0.20 {
		t.Errorf("speedup vs GPU = %.1f×, paper 344.6× (off %.0f%%)", res.SpeedupVsGPU, rel*100)
	}
	// CPU CI should be wide, bracketing the mean asymmetrically-ish like the
	// paper's (lower bound far below mean).
	if cpu.CILowUS >= cpu.MeanUS/2 {
		t.Errorf("CPU CI low %v not far below mean %v", cpu.CILowUS, cpu.MeanUS)
	}
}

func TestTableIWithGoMeasurement(t *testing.T) {
	res, err := TableI(TableIConfig{Trials: 100, Seed: 1, MeasureGo: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 with MeasureGo", len(res.Rows))
	}
	goRow := res.Rows[3]
	if goRow.MeanUS <= 0 {
		t.Fatal("go measurement empty")
	}
	out := FormatTableI(res)
	if !strings.Contains(out, "N/A") || !strings.Contains(out, "344.6") {
		t.Errorf("FormatTableI missing expected fields:\n%s", out)
	}
}

func TestTableIValidation(t *testing.T) {
	if _, err := TableI(TableIConfig{Trials: -5}); err == nil {
		t.Fatal("negative trials: expected error")
	}
}

func TestRunTrainingSmall(t *testing.T) {
	run, err := RunTraining(TrainRunConfig{
		RansomwareCount: 152,
		BenignCount:     155,
		Window:          30,
		Stride:          15,
		Epochs:          15,
		BatchSize:       16,
		Seed:            2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.TrainSize+run.TestSize != 307 {
		t.Fatalf("split sizes = %d + %d", run.TrainSize, run.TestSize)
	}
	// Short (30-call) windows subsampled from full-length traces are a hard
	// variant of the paper's task; anything well above chance demonstrates
	// the harness learns.
	if run.Final.Accuracy < 0.75 {
		t.Fatalf("accuracy = %v on small corpus", run.Final.Accuracy)
	}
	fig4 := FormatFig4(run)
	if !strings.Contains(fig4, "Peak accuracy") || !strings.Contains(fig4, "0.9833") {
		t.Errorf("FormatFig4 missing fields:\n%s", fig4)
	}
	met := FormatMetrics(run)
	for _, want := range []string{"Accuracy", "Precision", "Recall", "F1", "Confusion"} {
		if !strings.Contains(met, want) {
			t.Errorf("FormatMetrics missing %q", want)
		}
	}
}

func TestTableII(t *testing.T) {
	run, err := RunTraining(TrainRunConfig{
		RansomwareCount: 152, BenignCount: 62, Window: 20, Stride: 20,
		Epochs: 1, BatchSize: 32, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := TableII(run.Dataset)
	if len(rows) != 10 {
		t.Fatalf("families = %d, want 10", len(rows))
	}
	totalVariants, totalWindows := 0, 0
	for _, r := range rows {
		totalVariants += r.Instances
		totalWindows += r.Windows
		if !r.Encrypts {
			t.Errorf("%s must encrypt", r.Family)
		}
	}
	if totalVariants != 76 {
		t.Errorf("variants = %d, want 76 (Table II rows)", totalVariants)
	}
	if totalWindows != 152 {
		t.Errorf("ransomware windows = %d, want 152", totalWindows)
	}
	out := FormatTableII(rows, run.Dataset)
	for _, want := range []string{"Ryuk", "Wannacry", "Self-propagation", "Total: 76 variants"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTableII missing %q:\n%s", want, out)
		}
	}
	// nil dataset allowed.
	if rows := TableII(nil); len(rows) != 10 {
		t.Error("TableII(nil) should still list families")
	}
}

func TestEnergyComparison(t *testing.T) {
	res, err := Energy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.SavingsVsGPU < 100 || res.SavingsVsCPU < 100 {
		t.Fatalf("CSD energy savings too small: %v / %v", res.SavingsVsCPU, res.SavingsVsGPU)
	}
	out := FormatEnergy(res)
	for _, want := range []string{"FPGA (CSD)", "Energy/item", "savings"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatEnergy missing %q:\n%s", want, out)
		}
	}
}

func TestDetectionLatency(t *testing.T) {
	// Train a quick model, then measure per-family time to mitigation.
	run, err := RunTraining(TrainRunConfig{
		RansomwareCount: 667, BenignCount: 783,
		Epochs: 6, Seed: 4, TargetAccuracy: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := DetectionLatency(LatencyConfig{
		Model: run.Model, TraceLen: 2000, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("families = %d", len(rows))
	}
	totalVars, totalDet := 0, 0
	for _, r := range rows {
		totalVars += r.Variants
		totalDet += r.Detected
		if r.Detected > 0 && (r.MeanCalls <= 0 || r.MaxCalls <= 0) {
			t.Fatalf("%s: detected but no latency recorded: %+v", r.Family, r)
		}
	}
	if totalVars != 76 {
		t.Fatalf("variants = %d", totalVars)
	}
	// The deployed detector must stop the strong majority of variants well
	// before the 2000-call trace completes.
	if float64(totalDet)/float64(totalVars) < 0.9 {
		t.Fatalf("only %d/%d variants stopped", totalDet, totalVars)
	}
	out := FormatDetectionLatency(rows, 2000)
	for _, want := range []string{"Ryuk", "Mean calls", "variants stopped"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatDetectionLatency missing %q:\n%s", want, out)
		}
	}
	if _, err := DetectionLatency(LatencyConfig{}); err == nil {
		t.Error("nil model: expected error")
	}
}

func TestModelSelection(t *testing.T) {
	run, err := RunTraining(TrainRunConfig{
		RansomwareCount: 456, BenignCount: 465,
		Epochs: 8, Seed: 6, TargetAccuracy: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ModelSelection(run, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.LSTM.Accuracy < 0.9 || res.Histogram.Accuracy < 0.8 {
		t.Fatalf("accuracies = %v / %v", res.LSTM.Accuracy, res.Histogram.Accuracy)
	}
	out := FormatModelSelection(res)
	for _, want := range []string{"LSTM", "Histogram", "advantage"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatModelSelection missing %q", want)
		}
	}
	if _, err := ModelSelection(nil, nil, 1); err == nil {
		t.Error("nil run: expected error")
	}
}

func TestWindowSweep(t *testing.T) {
	points, err := WindowSweep(WindowSweepConfig{
		Windows:         []int{40, 80},
		RansomwareCount: 456,
		BenignCount:     465,
		Epochs:          6,
		Seed:            11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Accuracy < 0.85 {
			t.Fatalf("window %d accuracy = %v", p.Window, p.Accuracy)
		}
		if p.SampledVariants != 10 {
			t.Fatalf("window %d sampled %d variants", p.Window, p.SampledVariants)
		}
		if p.PerWindowMicros <= 0 {
			t.Fatalf("window %d has no FPGA time", p.Window)
		}
	}
	// Longer windows cost proportionally more FPGA time per classification.
	if points[1].PerWindowMicros <= points[0].PerWindowMicros {
		t.Fatalf("FPGA time not increasing with window: %v vs %v",
			points[0].PerWindowMicros, points[1].PerWindowMicros)
	}
	out := FormatWindowSweep(points)
	if !strings.Contains(out, "FPGA µs/window") {
		t.Errorf("FormatWindowSweep output:\n%s", out)
	}
	if _, err := WindowSweep(WindowSweepConfig{Windows: []int{-1}}); err == nil {
		t.Error("negative window: expected error")
	}
}
