package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"github.com/kfrida1/csdinf/internal/core"
	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/detect"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/quality"
	"github.com/kfrida1/csdinf/internal/sandbox"
)

// This file closes the detection-quality loop offline: it replays labeled
// ransomware and benign traffic through a freshly deployed detector with
// the quality scorecard attached, producing the recall / FPR /
// windows-to-flag / bytes-at-risk / drift numbers that BENCH_quality.json
// pins and benchdiff gates.

// QualityRunConfig controls the detection-quality scorecard experiment.
type QualityRunConfig struct {
	// Model is the trained classifier (train one with RunTraining first).
	Model *lstm.Model
	// TraceLen is the ransomware trace length replayed per variant; 0
	// defaults to 2000.
	TraceLen int
	// BenignLen is the benign trace length replayed per app; 0 defaults
	// to 1500.
	BenignLen int
	// Window is the classification window length; 0 defaults to the
	// paper's 100.
	Window int
	// Threshold is the alert probability; 0 defaults to 0.5.
	Threshold float64
	// VariantsPerFamily bounds how many variants of each family are
	// replayed; 0 defaults to 2 (all ten families still appear).
	VariantsPerFamily int
	// BenignApps bounds how many benign application profiles are
	// replayed; 0 defaults to 10.
	BenignApps int
	// Seed drives trace generation.
	Seed int64
	// Reference, when non-nil, arms the scorecard's drift detector so the
	// result reports PSI against the pinned distribution.
	Reference *quality.Reference
}

// QualityRun is the outcome of the detection-quality experiment.
type QualityRun struct {
	// Snapshot is the scorecard's full state after the replay.
	Snapshot quality.Snapshot
	// RansomProcesses / BenignProcesses count the replayed profiles.
	RansomProcesses int
	BenignProcesses int
}

// QualityScorecard deploys the model once, then replays every selected
// ransomware variant and benign app as its own process (fresh per-process
// detector state, distinct PID) with ground-truth labels on the context,
// and returns the scorecard's judgment.
func QualityScorecard(cfg QualityRunConfig) (*QualityRun, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("experiments: quality needs a trained model")
	}
	if cfg.TraceLen == 0 {
		cfg.TraceLen = 2000
	}
	if cfg.BenignLen == 0 {
		cfg.BenignLen = 1500
	}
	if cfg.Window == 0 {
		cfg.Window = 100
	}
	if cfg.VariantsPerFamily == 0 {
		cfg.VariantsPerFamily = 2
	}
	if cfg.BenignApps == 0 {
		cfg.BenignApps = 10
	}
	if cfg.BenignApps > len(sandbox.BenignApps) {
		cfg.BenignApps = len(sandbox.BenignApps)
	}

	scorecard, err := quality.New(quality.Config{Reference: cfg.Reference})
	if err != nil {
		return nil, err
	}
	dev, err := csd.New(csd.Config{})
	if err != nil {
		return nil, err
	}
	eng, err := core.Deploy(dev, cfg.Model, core.DeployConfig{SeqLen: cfg.Window})
	if err != nil {
		return nil, err
	}

	// Each profile runs as its own process against a fresh mux, so the
	// block latch (and the windows-to-flag clock) is per-process while the
	// engine deployment is shared.
	pid := 3000
	replayProfile := func(p *sandbox.Profile, length int, seed int64) error {
		mux, err := detect.NewMux(eng, detect.MuxConfig{
			Detector: detect.Config{Threshold: cfg.Threshold, Quality: scorecard},
		})
		if err != nil {
			return err
		}
		trace, err := p.Generate(length, seed)
		if err != nil {
			return err
		}
		ctx := quality.WithLabel(context.Background(), p.Label())
		pid++
		for _, call := range trace {
			ev, err := mux.Observe(ctx, pid, call)
			if err != nil {
				if errors.Is(err, detect.ErrBlocked) {
					return nil
				}
				return err
			}
			if ev != nil && ev.Action == detect.ActionBlock {
				return nil
			}
		}
		return nil
	}

	run := &QualityRun{}
	for _, fam := range sandbox.Families {
		n := fam.Variants
		if n > cfg.VariantsPerFamily {
			n = cfg.VariantsPerFamily
		}
		for v := 0; v < n; v++ {
			p, err := sandbox.RansomwareProfile(fam.Name, v)
			if err != nil {
				return nil, err
			}
			if err := replayProfile(p, cfg.TraceLen, cfg.Seed+int64(pid)); err != nil {
				return nil, fmt.Errorf("experiments: quality %s.v%d: %w", fam.Name, v, err)
			}
			run.RansomProcesses++
		}
	}
	for i := 0; i < cfg.BenignApps; i++ {
		p, err := sandbox.BenignProfile(sandbox.BenignApps[i])
		if err != nil {
			return nil, err
		}
		if err := replayProfile(p, cfg.BenignLen, cfg.Seed+int64(pid)); err != nil {
			return nil, fmt.Errorf("experiments: quality %s: %w", sandbox.BenignApps[i], err)
		}
		run.BenignProcesses++
	}

	run.Snapshot = scorecard.Snapshot()
	return run, nil
}

// FormatQuality renders the detection-quality scorecard.
func FormatQuality(run *QualityRun) string {
	var b strings.Builder
	q := run.Snapshot
	fmt.Fprintf(&b, "Detection quality (%d ransomware + %d benign processes, %d labeled windows)\n",
		run.RansomProcesses, run.BenignProcesses, q.Labeled)
	fmt.Fprintf(&b, "confusion tp=%d fp=%d tn=%d fn=%d\n",
		q.Total.TP, q.Total.FP, q.Total.TN, q.Total.FN)
	fmt.Fprintf(&b, "rates     recall %.4f  fpr %.4f  precision %.4f  accuracy %.4f  (paper recall %.4f)\n",
		q.Total.Recall, q.Total.FPR, q.Total.Precision, q.Total.Accuracy, PaperDetection.Recall)
	fmt.Fprintf(&b, "latency   windows-to-flag p50 %.0f p99 %.0f  bytes-at-risk p50 %.0f p99 %.0f\n",
		q.WindowsToFlag.P50, q.WindowsToFlag.P99, q.BytesAtRisk.P50, q.BytesAtRisk.P99)
	fmt.Fprintf(&b, "processes %d tracked, %d flagged, %d blocked\n",
		q.Processes.Tracked, q.Processes.Flagged, q.Processes.Blocked)
	if q.Drift.Reference != "" {
		state := "stable"
		if q.Drift.Drifted {
			state = "DRIFTED"
		}
		if q.Drift.LowCount {
			state = "low-count"
		}
		fmt.Fprintf(&b, "drift     psi %.4f vs %s (threshold %.2f)  [%s]\n",
			q.Drift.PSI, q.Drift.Reference, q.Drift.Threshold, state)
	}
	fmt.Fprintf(&b, "%-14s %6s %6s %6s %6s %10s %10s\n", "family", "tp", "fp", "tn", "fn", "recall", "windows")
	for _, f := range q.Families {
		fmt.Fprintf(&b, "%-14s %6d %6d %6d %6d %10.4f %10d\n",
			f.Family, f.TP, f.FP, f.TN, f.FN, f.Recall, f.Windows)
	}
	return b.String()
}
