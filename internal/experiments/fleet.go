package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/kfrida1/csdinf/internal/fleet"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/telemetry"
)

// FleetRunConfig controls the rack-scale serving benchmark.
type FleetRunConfig struct {
	// Nodes is the CSD count; 0 defaults to 4.
	Nodes int
	// Tenants is the number of concurrent tenant workers; 0 defaults to 16.
	Tenants int
	// WindowsPerTenant is each worker's classification count; 0 defaults
	// to 50.
	WindowsPerTenant int
	// QueueDepth bounds each node's queue; 0 defaults to 64.
	QueueDepth int
	// Seed drives the (untrained) model weights and the synthetic windows.
	Seed int64
}

// FleetRunResult is the structured outcome cmd/csdbench writes to
// BENCH_fleet.json and cmd/benchdiff gates. Throughput is wall-clock
// (higher is better); the queue-wait quantiles come from the merged
// per-device serve_queue_wait_seconds histograms (lower is better).
type FleetRunResult struct {
	Nodes             int     `json:"nodes"`
	Tenants           int     `json:"tenants"`
	Windows           int     `json:"windows"`
	WallSeconds       float64 `json:"wall_seconds"`
	WindowsPerSecond  float64 `json:"windows_per_second"`
	QueueWaitMeanUS   float64 `json:"queue_wait_mean_us"`
	QueueWaitP50US    float64 `json:"queue_wait_p50_us"`
	QueueWaitP99US    float64 `json:"queue_wait_p99_us"`
	SpilloverRequests int64   `json:"spillover_requests"`
}

// FleetRun deploys the paper's model across a small fleet and drives it
// with concurrent tenant load: every tenant's windows consistent-hash to a
// home device, queues apply backpressure (Block mode), and the merged
// queue-wait histogram yields the fleet-wide p99 the regression gate
// watches. The model is untrained — placement and scheduling cost do not
// depend on the weights.
func FleetRun(cfg FleetRunConfig) (*FleetRunResult, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	if cfg.Tenants == 0 {
		cfg.Tenants = 16
	}
	if cfg.WindowsPerTenant == 0 {
		cfg.WindowsPerTenant = 50
	}
	m, err := lstm.NewModel(lstm.PaperConfig(), cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	reg := telemetry.NewRegistry()
	fl, err := fleet.New(m, fleet.Config{
		Nodes:      cfg.Nodes,
		QueueDepth: cfg.QueueDepth,
		Block:      true,
		Telemetry:  reg,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	defer fl.Close()

	seqLen := fl.SeqLen()
	vocab := m.Config().VocabSize
	var failures atomic.Int64
	var firstErr atomic.Value
	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < cfg.Tenants; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			ctx := infer.WithTenant(context.Background(), fmt.Sprintf("tenant-%d", t))
			seq := make([]int, seqLen)
			for w := 0; w < cfg.WindowsPerTenant; w++ {
				for i := range seq {
					// Cheap deterministic per-(tenant, window) variation.
					seq[i] = (t*31 + w*7 + i) % vocab
				}
				if _, _, err := fl.Predict(ctx, seq); err != nil {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}(t)
	}
	wg.Wait()
	wall := time.Since(start)
	if n := failures.Load(); n > 0 {
		return nil, fmt.Errorf("experiments: %d fleet requests failed: %v",
			n, firstErr.Load())
	}

	windows := cfg.Tenants * cfg.WindowsPerTenant
	qw := fl.QueueWait()
	res := &FleetRunResult{
		Nodes:            cfg.Nodes,
		Tenants:          cfg.Tenants,
		Windows:          windows,
		WallSeconds:      wall.Seconds(),
		WindowsPerSecond: float64(windows) / wall.Seconds(),
		QueueWaitMeanUS:  qw.Mean / 1e3,
		QueueWaitP50US:   qw.P50 / 1e3,
		QueueWaitP99US:   qw.P99 / 1e3,
	}
	for _, mt := range reg.Snapshot() {
		if mt.Name == "fleet_spillover_total" {
			res.SpilloverRequests = mt.Value
		}
	}
	if qw.Count != int64(windows) {
		return nil, fmt.Errorf("experiments: queue-wait histogram saw %d windows, want %d",
			qw.Count, windows)
	}
	return res, nil
}

// FormatFleet renders the fleet benchmark result.
func FormatFleet(res *FleetRunResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d nodes, %d tenants × %d windows = %d classifications\n",
		res.Nodes, res.Tenants, res.Windows/max(res.Tenants, 1), res.Windows)
	fmt.Fprintf(&b, "%-28s %12.0f windows/s (%.3f s wall)\n",
		"Fleet throughput", res.WindowsPerSecond, res.WallSeconds)
	fmt.Fprintf(&b, "%-28s mean %8.2f µs   p50 %8.2f µs   p99 %8.2f µs\n",
		"Queue wait (fleet-wide)", res.QueueWaitMeanUS, res.QueueWaitP50US, res.QueueWaitP99US)
	fmt.Fprintf(&b, "%-28s %12d requests\n", "Placement spillover", res.SpilloverRequests)
	return b.String()
}
