package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/kfrida1/csdinf/internal/fleet"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/slo"
	"github.com/kfrida1/csdinf/internal/telemetry"
)

// fleetLatencySLO is the per-request wall-latency objective the benchmark
// reports attainment against: the paper's ~2ms serving promise at p99
// expressed as an SLO (see internal/slo), so perf regressions show up as
// budget burn rather than only as a shifted quantile.
const (
	fleetLatencySLO    = 2 * time.Millisecond
	fleetLatencyTarget = 0.99
)

// FleetRunConfig controls the rack-scale serving benchmark.
type FleetRunConfig struct {
	// Nodes is the CSD count; 0 defaults to 4.
	Nodes int
	// Tenants is the number of concurrent tenant workers; 0 defaults to 16.
	Tenants int
	// WindowsPerTenant is each worker's classification count; 0 defaults
	// to 50.
	WindowsPerTenant int
	// QueueDepth bounds each node's queue; 0 defaults to 64.
	QueueDepth int
	// Seed drives the (untrained) model weights and the synthetic windows.
	Seed int64
}

// FleetRunResult is the structured outcome cmd/csdbench writes to
// BENCH_fleet.json and cmd/benchdiff gates. Throughput is wall-clock
// (higher is better); the queue-wait quantiles come from the merged
// per-device serve_queue_wait_seconds histograms (lower is better).
type FleetRunResult struct {
	Nodes             int     `json:"nodes"`
	Tenants           int     `json:"tenants"`
	Windows           int     `json:"windows"`
	WallSeconds       float64 `json:"wall_seconds"`
	WindowsPerSecond  float64 `json:"windows_per_second"`
	QueueWaitMeanUS   float64 `json:"queue_wait_mean_us"`
	QueueWaitP50US    float64 `json:"queue_wait_p50_us"`
	QueueWaitP99US    float64 `json:"queue_wait_p99_us"`
	SpilloverRequests int64   `json:"spillover_requests"`
	// Per-request wall latency (dispatch to result, including queueing) and
	// attainment against the 2ms @ 99% latency SLO. benchdiff ignores fields
	// it has no gate for, so these ride alongside the throughput numbers.
	WallLatencyP50US   float64 `json:"wall_latency_p50_us"`
	WallLatencyP99US   float64 `json:"wall_latency_p99_us"`
	SLOAttainment      float64 `json:"slo_attainment"`
	SLOBudgetRemaining float64 `json:"slo_budget_remaining"`
	SLOMet             bool    `json:"slo_met"`
}

// FleetRun deploys the paper's model across a small fleet and drives it
// with concurrent tenant load: every tenant's windows consistent-hash to a
// home device, queues apply backpressure (Block mode), and the merged
// queue-wait histogram yields the fleet-wide p99 the regression gate
// watches. The model is untrained — placement and scheduling cost do not
// depend on the weights.
func FleetRun(cfg FleetRunConfig) (*FleetRunResult, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	if cfg.Tenants == 0 {
		cfg.Tenants = 16
	}
	if cfg.WindowsPerTenant == 0 {
		cfg.WindowsPerTenant = 50
	}
	m, err := lstm.NewModel(lstm.PaperConfig(), cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	reg := telemetry.NewRegistry()
	fl, err := fleet.New(m, fleet.Config{
		Nodes:      cfg.Nodes,
		QueueDepth: cfg.QueueDepth,
		Block:      true,
		Telemetry:  reg,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	defer fl.Close()

	evaluator, err := slo.NewEvaluator(slo.Config{
		Objectives: []slo.Objective{{
			Name:      "latency",
			Kind:      slo.KindLatency,
			Target:    fleetLatencyTarget,
			Threshold: fleetLatencySLO,
		}},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	wallHist := telemetry.NewHistogram(telemetry.Buckets{})

	seqLen := fl.SeqLen()
	vocab := m.Config().VocabSize
	var failures atomic.Int64
	var firstErr atomic.Value
	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < cfg.Tenants; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			ctx := infer.WithTenant(context.Background(), fmt.Sprintf("tenant-%d", t))
			seq := make([]int, seqLen)
			for w := 0; w < cfg.WindowsPerTenant; w++ {
				for i := range seq {
					// Cheap deterministic per-(tenant, window) variation.
					seq[i] = (t*31 + w*7 + i) % vocab
				}
				t0 := time.Now()
				_, _, err := fl.Predict(ctx, seq)
				lat := time.Since(t0)
				wallHist.ObserveDuration(lat)
				evaluator.Latency(lat, err == nil)
				if err != nil {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}(t)
	}
	wg.Wait()
	wall := time.Since(start)
	if n := failures.Load(); n > 0 {
		return nil, fmt.Errorf("experiments: %d fleet requests failed: %v",
			n, firstErr.Load())
	}

	windows := cfg.Tenants * cfg.WindowsPerTenant
	qw := fl.QueueWait()
	res := &FleetRunResult{
		Nodes:            cfg.Nodes,
		Tenants:          cfg.Tenants,
		Windows:          windows,
		WallSeconds:      wall.Seconds(),
		WindowsPerSecond: float64(windows) / wall.Seconds(),
		QueueWaitMeanUS:  qw.Mean / 1e3,
		QueueWaitP50US:   qw.P50 / 1e3,
		QueueWaitP99US:   qw.P99 / 1e3,
	}
	for _, mt := range reg.Snapshot() {
		if mt.Name == "fleet_spillover_total" {
			res.SpilloverRequests = mt.Value
		}
	}
	wall99 := wallHist.Snapshot()
	res.WallLatencyP50US = wall99.P50 / 1e3
	res.WallLatencyP99US = wall99.P99 / 1e3
	if st := evaluator.Evaluate(); len(st.Objectives) == 1 {
		o := st.Objectives[0]
		res.SLOAttainment = o.Attainment
		res.SLOBudgetRemaining = o.BudgetRemaining
		res.SLOMet = o.Met
	}
	if qw.Count != int64(windows) {
		return nil, fmt.Errorf("experiments: queue-wait histogram saw %d windows, want %d",
			qw.Count, windows)
	}
	return res, nil
}

// FormatFleet renders the fleet benchmark result.
func FormatFleet(res *FleetRunResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d nodes, %d tenants × %d windows = %d classifications\n",
		res.Nodes, res.Tenants, res.Windows/max(res.Tenants, 1), res.Windows)
	fmt.Fprintf(&b, "%-28s %12.0f windows/s (%.3f s wall)\n",
		"Fleet throughput", res.WindowsPerSecond, res.WallSeconds)
	fmt.Fprintf(&b, "%-28s mean %8.2f µs   p50 %8.2f µs   p99 %8.2f µs\n",
		"Queue wait (fleet-wide)", res.QueueWaitMeanUS, res.QueueWaitP50US, res.QueueWaitP99US)
	fmt.Fprintf(&b, "%-28s %12d requests\n", "Placement spillover", res.SpilloverRequests)
	fmt.Fprintf(&b, "%-28s p50 %8.2f µs   p99 %8.2f µs\n",
		"Wall latency (per request)", res.WallLatencyP50US, res.WallLatencyP99US)
	verdict := "VIOLATED"
	if res.SLOMet {
		verdict = "met"
	}
	fmt.Fprintf(&b, "%-28s %11.4f%% of 99%% @ 2ms (%s, budget %+.2f)\n",
		"Latency SLO attainment", res.SLOAttainment*100, verdict, res.SLOBudgetRemaining)
	return b.String()
}
