package experiments

import (
	"strings"
	"testing"
)

func TestFleetRunSmoke(t *testing.T) {
	res, err := FleetRun(FleetRunConfig{
		Nodes: 2, Tenants: 4, WindowsPerTenant: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != 20 {
		t.Fatalf("windows = %d, want 20", res.Windows)
	}
	if res.WindowsPerSecond <= 0 || res.WallSeconds <= 0 {
		t.Fatalf("throughput not measured: %+v", res)
	}
	if res.QueueWaitP99US < res.QueueWaitP50US {
		t.Fatalf("p99 %.2f < p50 %.2f", res.QueueWaitP99US, res.QueueWaitP50US)
	}
	// The objective itself may or may not be met on a loaded CI box — a
	// fully slammed runner can push every request past the 2ms threshold,
	// making latency attainment legitimately 0 — but the accounting must
	// stay a fraction coherent with the wall-latency quantiles.
	if res.SLOAttainment < 0 || res.SLOAttainment > 1 {
		t.Fatalf("SLO attainment = %v, want [0, 1]", res.SLOAttainment)
	}
	if res.WallLatencyP99US < res.WallLatencyP50US || res.WallLatencyP50US <= 0 {
		t.Fatalf("wall latency p50 %.2f / p99 %.2f incoherent",
			res.WallLatencyP50US, res.WallLatencyP99US)
	}
	if res.SLOMet != (res.SLOBudgetRemaining >= 0) {
		t.Fatalf("SLOMet = %v but budget remaining = %v",
			res.SLOMet, res.SLOBudgetRemaining)
	}
	out := FormatFleet(res)
	for _, want := range []string{"Fleet throughput", "p99", "spillover", "SLO attainment"} {
		if !strings.Contains(strings.ToLower(out), strings.ToLower(want)) {
			t.Fatalf("format output missing %q:\n%s", want, out)
		}
	}
}
