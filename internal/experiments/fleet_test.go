package experiments

import (
	"strings"
	"testing"
)

func TestFleetRunSmoke(t *testing.T) {
	res, err := FleetRun(FleetRunConfig{
		Nodes: 2, Tenants: 4, WindowsPerTenant: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != 20 {
		t.Fatalf("windows = %d, want 20", res.Windows)
	}
	if res.WindowsPerSecond <= 0 || res.WallSeconds <= 0 {
		t.Fatalf("throughput not measured: %+v", res)
	}
	if res.QueueWaitP99US < res.QueueWaitP50US {
		t.Fatalf("p99 %.2f < p50 %.2f", res.QueueWaitP99US, res.QueueWaitP50US)
	}
	out := FormatFleet(res)
	for _, want := range []string{"Fleet throughput", "p99", "spillover"} {
		if !strings.Contains(strings.ToLower(out), strings.ToLower(want)) {
			t.Fatalf("format output missing %q:\n%s", want, out)
		}
	}
}
