package experiments

import (
	"context"
	"fmt"
	"sync"

	"github.com/kfrida1/csdinf/internal/core"
	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/serve"
	"github.com/kfrida1/csdinf/internal/trace"
)

// TraceRunConfig controls the traced demo workload behind `csdbench
// -trace` and `make trace`.
type TraceRunConfig struct {
	// Devices is the number of CSDs behind the scheduler; 0 defaults to 2,
	// enough to show cross-device concurrency on the timeline.
	Devices int
	// Stored is the number of SSD-resident sequences classified per device
	// population (P2P path); 0 defaults to 12.
	Stored int
	// Live is the number of host-submitted windows (host PCIe path); 0
	// defaults to 4.
	Live int
	// Seed drives model initialization and the synthetic sequences.
	Seed int64
	// Trace receives the timeline; nil allocates a fresh tracer.
	Trace *trace.Tracer
}

func (c *TraceRunConfig) defaults() {
	if c.Devices == 0 {
		c.Devices = 2
	}
	if c.Stored == 0 {
		c.Stored = 12
	}
	if c.Live == 0 {
		c.Live = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Trace == nil {
		c.Trace = trace.New()
	}
}

// TraceResult is the JSON-serializable trace summary embedded in
// BENCH_table1.json when csdbench runs with -trace.
type TraceResult struct {
	Jobs    int            `json:"jobs"`
	Profile *trace.Profile `json:"profile"`
}

// TraceRunResult is a completed traced demo: the tracer holding the
// timeline (export with WriteChrome) and its aggregated profile.
type TraceRunResult struct {
	Tracer  *trace.Tracer
	Profile *trace.Profile
	// Jobs is the number of classifications completed.
	Jobs int
}

// TraceRun executes the Table I inference configuration — the paper model
// on the fully-optimized (fixed-point) pipeline — under the concurrent
// scheduler with the timeline tracer attached to every layer, producing
// the trace the paper's optimization study would read off Vitis Analyzer:
// per-CU kernel events with loop-nest cycle attributions, SSD/PCIe/DDR
// transfer stages, and per-request queue events correlated by job ID.
func TraceRun(cfg TraceRunConfig) (*TraceRunResult, error) {
	cfg.defaults()
	if cfg.Devices < 0 || cfg.Stored < 0 || cfg.Live < 0 {
		return nil, fmt.Errorf("experiments: negative trace-run sizes %+v", cfg)
	}
	m, err := lstm.NewModel(lstm.PaperConfig(), cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}

	seqLen := 100
	vocab := m.Config().VocabSize
	offsets := make([]int64, cfg.Stored)
	engines := make([]infer.Inferencer, cfg.Devices)
	for i := range engines {
		dev, err := csd.New(csd.Config{})
		if err != nil {
			return nil, fmt.Errorf("experiments: device %d: %w", i, err)
		}
		// Mirror the scan targets on every device, as the background-scan
		// replication deployment does (serve routes stored requests to any
		// device).
		for s := 0; s < cfg.Stored; s++ {
			seq := syntheticSeq(seqLen, vocab, cfg.Seed+int64(s))
			off := int64(s * seqLen * csd.ItemBytes)
			offsets[s] = off
			if _, err := dev.StoreSequence(off, seq); err != nil {
				return nil, fmt.Errorf("experiments: store sequence %d: %w", s, err)
			}
		}
		eng, err := core.Deploy(dev, m, core.DeployConfig{
			Level: kernels.LevelFixedPoint, Part: fpga.AlveoU200, SeqLen: seqLen,
			Trace: cfg.Trace, TraceName: fmt.Sprintf("csd%d", i),
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: deploy to device %d: %w", i, err)
		}
		engines[i] = eng
	}

	srv, err := serve.New(engines, serve.Config{Block: true, Trace: cfg.Trace})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	defer srv.Close()

	// Fan the workload out concurrently so device queues actually form and
	// the timeline shows both devices busy at once.
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Stored+cfg.Live)
	for _, off := range offsets {
		wg.Add(1)
		go func(off int64) {
			defer wg.Done()
			if _, _, err := srv.PredictStored(ctx, off); err != nil {
				errs <- fmt.Errorf("stored offset %d: %w", off, err)
			}
		}(off)
	}
	for i := 0; i < cfg.Live; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seq := syntheticSeq(seqLen, vocab, cfg.Seed+1000+int64(i))
			if _, _, err := srv.Predict(ctx, seq); err != nil {
				errs <- fmt.Errorf("live window %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, fmt.Errorf("experiments: trace run: %w", err)
	}

	return &TraceRunResult{
		Tracer:  cfg.Trace,
		Profile: cfg.Trace.Profile(),
		Jobs:    cfg.Stored + cfg.Live,
	}, nil
}

// syntheticSeq builds a deterministic in-vocabulary sequence (a cheap LCG;
// the traced workload cares about timing shape, not classification truth).
func syntheticSeq(n, vocab int, seed int64) []int {
	seq := make([]int, n)
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := range seq {
		x = x*6364136223846793005 + 1442695040888963407
		seq[i] = int((x >> 33) % uint64(vocab))
	}
	return seq
}
