package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/kfrida1/csdinf/internal/trace"
)

// traceRunForTest runs a small traced workload once and shares it across the
// assertions below (a TraceRun deploys real engines, so it is the expensive
// part).
func traceRunForTest(t *testing.T) *TraceRunResult {
	t.Helper()
	run, err := TraceRun(TraceRunConfig{Devices: 2, Stored: 4, Live: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestTraceRunCorrelatesJobsAcrossLayers(t *testing.T) {
	run := traceRunForTest(t)
	if run.Jobs != 6 {
		t.Fatalf("jobs = %d, want 6", run.Jobs)
	}

	// Index the timeline by job: every request's queue event must share its
	// ID with kernel and transfer events from the device layers below.
	type jobEvents struct{ queue, kernel, transfer int }
	jobs := map[int64]*jobEvents{}
	for _, ev := range run.Tracer.Events() {
		if ev.Job == 0 {
			continue
		}
		je := jobs[ev.Job]
		if je == nil {
			je = &jobEvents{}
			jobs[ev.Job] = je
		}
		switch ev.Cat {
		case trace.CatQueue:
			je.queue++
		case trace.CatKernel:
			je.kernel++
		case trace.CatTransfer:
			je.transfer++
		}
	}
	if len(jobs) != run.Jobs {
		t.Fatalf("timeline carries %d distinct jobs, want %d", len(jobs), run.Jobs)
	}
	for id, je := range jobs {
		if je.queue != 1 {
			t.Errorf("job %d: %d queue events, want exactly 1", id, je.queue)
		}
		if je.kernel == 0 {
			t.Errorf("job %d: queue event has no correlated kernel events", id)
		}
		if je.transfer == 0 {
			t.Errorf("job %d: queue event has no correlated transfer events", id)
		}
	}
}

func TestTraceRunMeetsAcceptanceBars(t *testing.T) {
	run := traceRunForTest(t)
	p := run.Profile

	// >= 95% of simulated kernel cycles attributed to named loop nests.
	if p.AttributedShare < 0.95 {
		t.Errorf("attributed share = %.3f, want >= 0.95", p.AttributedShare)
	}
	// Nonzero transfer/compute overlap from the streaming model.
	if p.Overlap <= 0 {
		t.Errorf("transfer/compute overlap = %v, want > 0", p.Overlap)
	}
	// kernel_gates spreads across >= 4 distinct CU tracks per device.
	gateCUs := map[trace.Track]bool{}
	for _, ev := range run.Tracer.Events() {
		if ev.Cat == trace.CatKernel && strings.HasPrefix(ev.Track.Name, "cu-kernel_gates-") {
			gateCUs[ev.Track] = true
		}
	}
	perGroup := map[string]int{}
	for tr := range gateCUs {
		perGroup[tr.Group]++
	}
	if len(perGroup) != 2 {
		t.Fatalf("gate CU tracks on %d device groups, want 2", len(perGroup))
	}
	for g, n := range perGroup {
		if n < 4 {
			t.Errorf("device %s exposes %d gate CU tracks, want >= 4", g, n)
		}
	}
	if p.QueueJobs != run.Jobs {
		t.Errorf("profile queue jobs = %d, want %d", p.QueueJobs, run.Jobs)
	}
}

func TestTraceRunChromeExportLoads(t *testing.T) {
	run := traceRunForTest(t)
	var buf bytes.Buffer
	if err := run.Tracer.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" || len(doc.TraceEvents) == 0 {
		t.Fatalf("export = unit %q with %d events", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
}
