package experiments

import (
	"strings"
	"testing"
)

func TestWallClockSelfAudit(t *testing.T) {
	res, err := WallClock(WallClockConfig{Iterations: 40, Warmup: 5})
	if err != nil {
		t.Fatalf("WallClock: %v", err)
	}
	if res.Iterations != 40 {
		t.Fatalf("iterations = %d, want 40", res.Iterations)
	}
	if res.Instrumented.NSPerOp <= 0 || res.Bare.NSPerOp <= 0 {
		t.Fatalf("non-positive ns/op: instrumented=%f bare=%f",
			res.Instrumented.NSPerOp, res.Bare.NSPerOp)
	}
	if res.Instrumented.AllocsPerOp <= 0 {
		t.Fatalf("instrumented allocs/op = %f, want > 0", res.Instrumented.AllocsPerOp)
	}
	// The instrumented leg must have recorded per-stage breakdowns; compute
	// and observe are unconditionally exercised by the serve pipeline.
	for _, stage := range []string{"queue", "compute", "observe"} {
		if res.StageNSPerOp[stage] <= 0 {
			t.Errorf("stage %q mean ns = %f, want > 0", stage, res.StageNSPerOp[stage])
		}
	}

	out := FormatWallClock(res)
	for _, want := range []string{"observability on", "observability off", "overhead:", "instrumented stage means:"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatWallClock output missing %q:\n%s", want, out)
		}
	}
}

func TestWallClockRejectsNegativeIterations(t *testing.T) {
	if _, err := WallClock(WallClockConfig{Iterations: -1}); err == nil {
		t.Fatal("expected error for negative iterations")
	}
}
