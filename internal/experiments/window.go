package experiments

import (
	"fmt"
	"strings"

	"github.com/kfrida1/csdinf/internal/core"
	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/sandbox"
)

// The paper fixes the sequence length at 100 API calls (Appendix A) without
// exploring alternatives. This experiment sweeps the window length and
// reports the trade-off it controls: longer windows carry more context
// (accuracy) but delay the first classification and slow each one
// (detection latency) — the quantity that decides how much encryption a
// real infection completes before mitigation.

// WindowPoint is the outcome at one window length.
type WindowPoint struct {
	Window int
	// Accuracy is held-out test accuracy at this window length.
	Accuracy float64
	// F1 is the held-out F1 score.
	F1 float64
	// MeanDetectionCalls is the mean API-call count from infection start
	// to mitigation over the sampled variants (0 when none detected).
	MeanDetectionCalls float64
	// DetectedVariants / SampledVariants give the detection rate.
	DetectedVariants int
	SampledVariants  int
	// PerWindowMicros is the simulated FPGA time to classify one window
	// (items × per-item time).
	PerWindowMicros float64
}

// WindowSweepConfig controls the sweep.
type WindowSweepConfig struct {
	// Windows are the lengths to evaluate; empty defaults to 50/100/200.
	Windows []int
	// SequencesPerClass scales each corpus; 0 defaults to ~1/20 paper
	// scale (667/783).
	RansomwareCount, BenignCount int
	// Epochs per training run; 0 defaults to 10.
	Epochs int
	// Seed drives everything.
	Seed int64
}

// WindowSweep trains one classifier per window length and measures
// accuracy, detection latency (first variant of each family replayed as a
// live infection), and per-window FPGA time.
func WindowSweep(cfg WindowSweepConfig) ([]WindowPoint, error) {
	if len(cfg.Windows) == 0 {
		cfg.Windows = []int{50, 100, 200}
	}
	if cfg.RansomwareCount == 0 {
		cfg.RansomwareCount = dataset.PaperRansomwareCount / 20
	}
	if cfg.BenignCount == 0 {
		cfg.BenignCount = dataset.PaperBenignCount / 20
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 10
	}

	var out []WindowPoint
	for _, w := range cfg.Windows {
		if w <= 0 {
			return nil, fmt.Errorf("experiments: window %d must be positive", w)
		}
		run, err := RunTraining(TrainRunConfig{
			RansomwareCount: cfg.RansomwareCount,
			BenignCount:     cfg.BenignCount,
			Window:          w,
			Stride:          max(w/4, 1),
			Epochs:          cfg.Epochs,
			Seed:            cfg.Seed,
			TargetAccuracy:  0.99,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: window %d: %w", w, err)
		}
		pt := WindowPoint{Window: w, Accuracy: run.Final.Accuracy, F1: run.Final.F1}

		// Detection latency over the first variant of each family.
		lat := LatencyConfig{Model: run.Model, TraceLen: 3000, Seed: cfg.Seed + 7}
		var sum int64
		for _, fam := range sandbox.Families {
			calls, detected, err := replayVariantWindow(lat, fam.Name, 0, w)
			if err != nil {
				return nil, fmt.Errorf("experiments: window %d, %s: %w", w, fam.Name, err)
			}
			pt.SampledVariants++
			if detected {
				pt.DetectedVariants++
				sum += calls
			}
		}
		if pt.DetectedVariants > 0 {
			pt.MeanDetectionCalls = float64(sum) / float64(pt.DetectedVariants)
		}

		// Per-window FPGA time at the deployed per-item latency.
		dev, err := csd.New(csd.Config{})
		if err != nil {
			return nil, err
		}
		eng, err := core.Deploy(dev, run.Model, core.DeployConfig{SeqLen: w})
		if err != nil {
			return nil, err
		}
		_, _, _, perItem := eng.PerItemMicros()
		pt.PerWindowMicros = perItem * float64(w)
		out = append(out, pt)
	}
	return out, nil
}

// FormatWindowSweep renders the sweep table.
func FormatWindowSweep(points []WindowPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %10s %10s %12s %16s %16s\n",
		"Window", "Accuracy", "F1", "Detected", "Mean det. calls", "FPGA µs/window")
	for _, p := range points {
		fmt.Fprintf(&b, "%8d %10.4f %10.4f %9d/%-2d %16.0f %16.1f\n",
			p.Window, p.Accuracy, p.F1, p.DetectedVariants, p.SampledVariants,
			p.MeanDetectionCalls, p.PerWindowMicros)
	}
	return b.String()
}
