// Package activation provides the activation functions used by the LSTM
// classifier, in both float64 (offline training) and fixed-point (FPGA
// kernel) forms.
//
// The paper (§III-D) replaces every tanh in the LSTM with softsign,
//
//	softsign(x) = x / (|x| + 1),
//
// because softsign shares tanh's S-shape and asymptotes but avoids the exp()
// operation that is expensive to synthesize on an FPGA. The sigmoid gates are
// kept; in fixed point they are realized with the classic PLAN piecewise-
// linear approximation, which needs only shifts, adds, and compares —
// exactly the operations DSP slices execute in one cycle.
package activation

import (
	"fmt"
	"math"

	"github.com/kfrida1/csdinf/internal/fixed"
)

// Kind identifies an activation function.
type Kind int

// Supported activation kinds. Enums start at 1 so the zero value is invalid
// and cannot be mistaken for a real choice.
const (
	Sigmoid Kind = iota + 1
	Tanh
	Softsign
	Identity
)

// String returns the lower-case name of the activation.
func (k Kind) String() string {
	switch k {
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	case Softsign:
		return "softsign"
	case Identity:
		return "identity"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Func returns the float64 implementation of k.
func (k Kind) Func() (func(float64) float64, error) {
	switch k {
	case Sigmoid:
		return SigmoidF, nil
	case Tanh:
		return math.Tanh, nil
	case Softsign:
		return SoftsignF, nil
	case Identity:
		return func(x float64) float64 { return x }, nil
	default:
		return nil, fmt.Errorf("activation: unknown kind %d", int(k))
	}
}

// Derivative returns d/dx of k evaluated *from the activated output* y (the
// form used during backpropagation) for Sigmoid and Tanh, and from the raw
// input x for Softsign (whose derivative is not expressible from the output
// alone without an extra inversion).
//
// The returned function's argument convention is documented per kind:
//   - Sigmoid:  f(y) = y(1-y)          (argument is the output)
//   - Tanh:     f(y) = 1-y²            (argument is the output)
//   - Softsign: f(x) = 1/(1+|x|)²      (argument is the pre-activation)
//   - Identity: f(_) = 1
func (k Kind) Derivative() (func(float64) float64, error) {
	switch k {
	case Sigmoid:
		return func(y float64) float64 { return y * (1 - y) }, nil
	case Tanh:
		return func(y float64) float64 { return 1 - y*y }, nil
	case Softsign:
		return func(x float64) float64 {
			d := 1 + math.Abs(x)
			return 1 / (d * d)
		}, nil
	case Identity:
		return func(float64) float64 { return 1 }, nil
	default:
		return nil, fmt.Errorf("activation: unknown kind %d", int(k))
	}
}

// SigmoidF is the float64 logistic function 1/(1+e^-x).
func SigmoidF(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}

// SoftsignF is the float64 softsign x/(|x|+1).
func SoftsignF(x float64) float64 {
	return x / (math.Abs(x) + 1)
}

// Fixed evaluates activations in fixed-point arithmetic. It is the form the
// FPGA kernels execute. Fixed is immutable and safe for concurrent use.
type Fixed struct {
	a fixed.Arith
}

// NewFixed returns a fixed-point activation evaluator over arith a.
func NewFixed(a fixed.Arith) Fixed {
	return Fixed{a: a}
}

// Softsign computes x/(|x|+1) exactly in fixed point:
// (x*S) / (|x| + S) with rounding, where S is the scale. No approximation is
// involved; this is why the paper prefers softsign on hardware.
func (f Fixed) Softsign(x fixed.Value) fixed.Value {
	den := f.a.Add(f.a.Abs(x), f.a.One())
	// den >= S > 0, so Div cannot fail; compute directly to stay in the
	// single-rounding regime.
	v, err := f.a.Div(x, den)
	if err != nil {
		// Unreachable: den >= One() > 0.
		panic("activation: softsign denominator zero")
	}
	return v
}

// Sigmoid computes the PLAN (Piecewise Linear Approximation of a Nonlinear
// function, Amin et al.) approximation of the logistic sigmoid:
//
//	|x| >= 5          -> 1
//	2.375 <= |x| < 5   -> 0.03125|x| + 0.84375
//	1 <= |x| < 2.375   -> 0.125|x|  + 0.625
//	0 <= |x| < 1       -> 0.25|x|   + 0.5
//
// with sigmoid(-x) = 1 - sigmoid(x). Maximum absolute error is below 0.019,
// which is immaterial next to the gate saturation behaviour the LSTM relies
// on.
func (f Fixed) Sigmoid(x fixed.Value) fixed.Value {
	neg := x < 0
	ax := f.a.Abs(x)
	one := f.a.One()
	var y fixed.Value
	switch {
	case ax >= f.a.FromInt(5):
		y = one
	case ax >= f.a.FromFloat(2.375):
		y = f.a.Add(f.a.Mul(f.a.FromFloat(0.03125), ax), f.a.FromFloat(0.84375))
	case ax >= one:
		y = f.a.Add(f.a.Mul(f.a.FromFloat(0.125), ax), f.a.FromFloat(0.625))
	default:
		y = f.a.Add(f.a.Mul(f.a.FromFloat(0.25), ax), f.a.FromFloat(0.5))
	}
	if neg {
		return f.a.Sub(one, y)
	}
	return y
}

// Tanh approximates tanh via the identity tanh(x) = 2*sigmoid(2x) - 1 on top
// of the PLAN sigmoid. It exists for the activation ablation; the production
// kernels use Softsign instead, per the paper.
func (f Fixed) Tanh(x fixed.Value) fixed.Value {
	two := f.a.FromInt(2)
	return f.a.Sub(f.a.Mul(two, f.Sigmoid(f.a.Mul(two, x))), f.a.One())
}

// Apply evaluates kind k at x. Identity returns x unchanged.
func (f Fixed) Apply(k Kind, x fixed.Value) (fixed.Value, error) {
	switch k {
	case Sigmoid:
		return f.Sigmoid(x), nil
	case Tanh:
		return f.Tanh(x), nil
	case Softsign:
		return f.Softsign(x), nil
	case Identity:
		return x, nil
	default:
		return 0, fmt.Errorf("activation: unknown kind %d", int(k))
	}
}

// PLANMaxError is the documented worst-case absolute error of the PLAN
// sigmoid approximation.
const PLANMaxError = 0.0189
