package activation

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/kfrida1/csdinf/internal/fixed"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{Sigmoid, "sigmoid"},
		{Tanh, "tanh"},
		{Softsign, "softsign"},
		{Identity, "identity"},
		{Kind(99), "Kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.k), got, tt.want)
		}
	}
}

func TestKindFunc(t *testing.T) {
	for _, k := range []Kind{Sigmoid, Tanh, Softsign, Identity} {
		f, err := k.Func()
		if err != nil {
			t.Fatalf("%v.Func(): %v", k, err)
		}
		if f == nil {
			t.Fatalf("%v.Func() returned nil func", k)
		}
	}
	if _, err := Kind(0).Func(); err == nil {
		t.Error("Kind(0).Func() expected error")
	}
}

func TestSigmoidValues(t *testing.T) {
	tests := []struct {
		x, want float64
	}{
		{0, 0.5},
		{100, 1},
		{-100, 0},
	}
	for _, tt := range tests {
		if got := SigmoidF(tt.x); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("SigmoidF(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestSoftsignValues(t *testing.T) {
	tests := []struct {
		x, want float64
	}{
		{0, 0},
		{1, 0.5},
		{-1, -0.5},
		{3, 0.75},
		{-3, -0.75},
	}
	for _, tt := range tests {
		if got := SoftsignF(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("SoftsignF(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestSoftsignSimilarToTanh(t *testing.T) {
	// The paper's justification: same S-shape and asymptotes. Verify the two
	// agree in sign, bound, and monotonic ordering over a grid.
	for x := -6.0; x <= 6.0; x += 0.25 {
		s, th := SoftsignF(x), math.Tanh(x)
		if math.Signbit(s) != math.Signbit(th) && x != 0 {
			t.Errorf("sign mismatch at %v: softsign %v tanh %v", x, s, th)
		}
		if math.Abs(s) >= 1 {
			t.Errorf("softsign(%v) = %v escapes (-1, 1)", x, s)
		}
	}
}

func TestDerivatives(t *testing.T) {
	// Numeric differentiation cross-check.
	const h = 1e-6
	for _, k := range []Kind{Sigmoid, Tanh, Softsign, Identity} {
		f, err := k.Func()
		if err != nil {
			t.Fatal(err)
		}
		d, err := k.Derivative()
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range []float64{-2, -0.5, 0.1, 1.7} {
			numeric := (f(x+h) - f(x-h)) / (2 * h)
			var analytic float64
			switch k {
			case Softsign, Identity:
				analytic = d(x) // argument convention: pre-activation
			default:
				analytic = d(f(x)) // argument convention: output
			}
			if math.Abs(numeric-analytic) > 1e-4 {
				t.Errorf("%v'(%v): numeric %v, analytic %v", k, x, numeric, analytic)
			}
		}
	}
	if _, err := Kind(0).Derivative(); err == nil {
		t.Error("Kind(0).Derivative() expected error")
	}
}

func TestFixedSoftsignMatchesFloat(t *testing.T) {
	fa := NewFixed(fixed.Default)
	for _, x := range []float64{-10, -1, -0.5, 0, 0.5, 1, 3.7, 42} {
		got := fixed.Default.ToFloat(fa.Softsign(fixed.Default.FromFloat(x)))
		want := SoftsignF(x)
		if math.Abs(got-want) > 2e-6 {
			t.Errorf("fixed softsign(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestFixedSigmoidPLANError(t *testing.T) {
	fa := NewFixed(fixed.Default)
	worst := 0.0
	for x := -8.0; x <= 8.0; x += 0.01 {
		got := fixed.Default.ToFloat(fa.Sigmoid(fixed.Default.FromFloat(x)))
		err := math.Abs(got - SigmoidF(x))
		if err > worst {
			worst = err
		}
	}
	if worst > PLANMaxError+1e-4 {
		t.Fatalf("PLAN sigmoid worst error %v exceeds documented bound %v", worst, PLANMaxError)
	}
}

func TestFixedTanhRange(t *testing.T) {
	fa := NewFixed(fixed.Default)
	for x := -6.0; x <= 6.0; x += 0.05 {
		got := fixed.Default.ToFloat(fa.Tanh(fixed.Default.FromFloat(x)))
		if got < -1.0-1e-6 || got > 1.0+1e-6 {
			t.Fatalf("fixed tanh(%v) = %v escapes [-1, 1]", x, got)
		}
		if math.Abs(got-math.Tanh(x)) > 2*PLANMaxError+1e-3 {
			t.Fatalf("fixed tanh(%v) = %v, want near %v", x, got, math.Tanh(x))
		}
	}
}

func TestFixedApply(t *testing.T) {
	fa := NewFixed(fixed.Default)
	x := fixed.Default.FromFloat(0.3)
	for _, k := range []Kind{Sigmoid, Tanh, Softsign, Identity} {
		if _, err := fa.Apply(k, x); err != nil {
			t.Errorf("Apply(%v): %v", k, err)
		}
	}
	if _, err := fa.Apply(Kind(0), x); err == nil {
		t.Error("Apply(Kind(0)) expected error")
	}
	if got, err := fa.Apply(Identity, x); err != nil || got != x {
		t.Errorf("Apply(Identity) = %v, %v; want %v, nil", got, err, x)
	}
}

// Property: fixed-point sigmoid stays in [0, 1] and is monotone
// non-decreasing.
func TestPropFixedSigmoidRangeMonotone(t *testing.T) {
	fa := NewFixed(fixed.Default)
	one := fixed.Default.One()
	f := func(a, b int32) bool {
		x, y := fixed.Value(a)*100, fixed.Value(b)*100
		sx, sy := fa.Sigmoid(x), fa.Sigmoid(y)
		if sx < 0 || sx > one || sy < 0 || sy > one {
			return false
		}
		if x <= y {
			return sx <= sy
		}
		return sy <= sx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: fixed-point softsign is odd: softsign(-x) == -softsign(x).
func TestPropFixedSoftsignOdd(t *testing.T) {
	fa := NewFixed(fixed.Default)
	f := func(a int32) bool {
		x := fixed.Value(a) * 1000
		return fa.Softsign(-x) == -fa.Softsign(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: fixed-point softsign magnitude strictly below 1.
func TestPropFixedSoftsignBounded(t *testing.T) {
	fa := NewFixed(fixed.Default)
	one := fixed.Default.One()
	f := func(a int64) bool {
		v := fa.Softsign(a)
		return v > -one && v < one || a == 0 && v == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkFixedSigmoid(b *testing.B) {
	fa := NewFixed(fixed.Default)
	x := fixed.Default.FromFloat(1.3)
	for i := 0; i < b.N; i++ {
		_ = fa.Sigmoid(x)
	}
}

func BenchmarkFixedSoftsign(b *testing.B) {
	fa := NewFixed(fixed.Default)
	x := fixed.Default.FromFloat(-0.7)
	for i := 0; i < b.N; i++ {
		_ = fa.Softsign(x)
	}
}

func BenchmarkFloatTanh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = math.Tanh(0.7)
	}
}
