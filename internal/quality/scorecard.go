package quality

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/metrics"
	"github.com/kfrida1/csdinf/internal/telemetry"
)

// Component is the eventlog component for scorecard events.
const Component = "quality"

// Event names emitted by the scorecard.
const (
	// EventDriftDetected fires on the edge where the live score
	// distribution's PSI against the reference crosses the threshold.
	EventDriftDetected = "quality.drift.detected"
	// EventDriftCleared fires on the edge where PSI drops back below the
	// threshold.
	EventDriftCleared = "quality.drift.cleared"
)

// Defaults.
const (
	// DefaultDriftThreshold is the PSI above which the score distribution
	// counts as drifted; 0.2 is the conventional "significant shift"
	// boundary for population-stability monitoring.
	DefaultDriftThreshold = 0.2
	// DefaultMinDriftSamples guards the PSI against low-count noise: with
	// fewer live observations than this, drift is never declared.
	DefaultMinDriftSamples = 200
	// DefaultBytesPerWindow is the simulated write volume behind one
	// classification window: a window spans Stride API calls of which a
	// handful are file writes, modeled as 4 × 64 KiB chunks. It converts
	// windows-until-block into the bytes-written-before-mitigation number
	// the related work reports.
	DefaultBytesPerWindow = 4 * 64 * 1024
	// DefaultMaxFamilies bounds the per-family breakdown (10 emulated
	// families + benign archetypes + unknown); extra families fold into
	// FamilyOther.
	DefaultMaxFamilies = 16
	// DefaultMaxProcesses bounds the per-PID latency-tracking map; new
	// PIDs beyond it are still scored in the confusion matrix but their
	// windows-to-flag latency is dropped (and counted).
	DefaultMaxProcesses = 8192
	// maxLatencySamples bounds the raw windows-to-flag / bytes-at-risk
	// sample slices the quantiles are computed from.
	maxLatencySamples = 65536
)

// FamilyOther absorbs families beyond the Config.MaxFamilies bound.
const FamilyOther = "other"

// Verdict is one classified window as seen by the scorecard: the
// detector's probability and decision for one process at one window.
type Verdict struct {
	// PID identifies the process, keying detection-latency tracking.
	PID int
	// Probability is the model score in [0,1].
	Probability float64
	// Flagged is the detector's decision for this window (alert or
	// block).
	Flagged bool
	// Blocked is true when this window latched the process-level block
	// (mitigation fired).
	Blocked bool
}

// Config wires a Scorecard into the observability stack. All fields are
// optional.
type Config struct {
	// Telemetry receives quality_* series.
	Telemetry *telemetry.Registry
	// Events receives quality-component events (drift edges).
	Events *eventlog.Logger
	// SLO, when non-nil, receives every labeled verdict; wire
	// slo.Evaluator.Quality here so recall / false-positive-rate
	// objectives burn on misclassification. (A func hook rather than a
	// typed dependency: slo sits above quality in the import order.)
	SLO func(truth, flagged bool)
	// Reference is the pinned score distribution drift is judged
	// against; nil disables the drift detector.
	Reference *Reference
	// DriftThreshold is the PSI drift boundary; 0 defaults to
	// DefaultDriftThreshold.
	DriftThreshold float64
	// MinDriftSamples is the low-count guard; 0 defaults to
	// DefaultMinDriftSamples.
	MinDriftSamples int
	// BytesPerWindow converts windows-until-block to simulated
	// bytes-written-before-block; 0 defaults to DefaultBytesPerWindow.
	BytesPerWindow int64
	// MaxFamilies bounds the per-family breakdown; 0 defaults to
	// DefaultMaxFamilies.
	MaxFamilies int
	// MaxProcesses bounds per-PID latency tracking; 0 defaults to
	// DefaultMaxProcesses.
	MaxProcesses int
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// familyState is one family's slice of the scorecard.
type familyState struct {
	confusion metrics.Confusion
	windows   int64
}

// procState tracks one PID's detection latency.
type procState struct {
	truth   bool
	labeled bool
	windows int64 // classified windows seen so far
	flagged bool
	blocked bool
}

// Scorecard is the concurrency-safe online detection-quality aggregate.
// A nil *Scorecard is inert, like every other observability hook in the
// stack.
type Scorecard struct {
	cfg Config

	mu        sync.Mutex
	total     metrics.Confusion
	families  map[string]*familyState
	procs     map[int]*procState
	windows   int64 // all observed windows, labeled or not
	unlabeled int64
	flagged   int64 // processes flagged at least once
	blocked   int64 // processes blocked
	dropped   int64 // PIDs beyond MaxProcesses whose latency is untracked
	scoreBins [ScoreBins]int64
	scoreN    int64
	toFlag    []float64 // windows-until-flagged per true-positive process
	atRisk    []float64 // simulated bytes written before block
	drifted   bool

	// Telemetry series (nil when Config.Telemetry is nil).
	windowsC   *telemetry.Counter
	unlabeledC *telemetry.Counter
	outcomeC   map[string]*telemetry.Counter // tp/fp/tn/fn
	psiG       *telemetry.Gauge
	driftG     *telemetry.Gauge
	toFlagH    *telemetry.Histogram
}

// New builds a scorecard.
func New(cfg Config) (*Scorecard, error) {
	if cfg.DriftThreshold < 0 {
		return nil, fmt.Errorf("quality: negative drift threshold %v", cfg.DriftThreshold)
	}
	if cfg.Reference != nil {
		if err := cfg.Reference.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.DriftThreshold == 0 {
		cfg.DriftThreshold = DefaultDriftThreshold
	}
	if cfg.MinDriftSamples == 0 {
		cfg.MinDriftSamples = DefaultMinDriftSamples
	}
	if cfg.BytesPerWindow == 0 {
		cfg.BytesPerWindow = DefaultBytesPerWindow
	}
	if cfg.MaxFamilies == 0 {
		cfg.MaxFamilies = DefaultMaxFamilies
	}
	if cfg.MaxProcesses == 0 {
		cfg.MaxProcesses = DefaultMaxProcesses
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	s := &Scorecard{
		cfg:      cfg,
		families: make(map[string]*familyState),
		procs:    make(map[int]*procState),
	}
	// A nil registry hands back inert series, so the scorecard never has
	// to branch on whether telemetry is wired.
	r := cfg.Telemetry
	s.windowsC = r.Counter("quality_windows_total", "classified windows seen by the scorecard")
	s.unlabeledC = r.Counter("quality_unlabeled_total", "windows observed without a ground-truth label")
	s.outcomeC = make(map[string]*telemetry.Counter, 4)
	for _, o := range []string{"tp", "fp", "tn", "fn"} {
		s.outcomeC[o] = r.Counter("quality_verdicts_total",
			"labeled verdicts by confusion outcome", telemetry.L("outcome", o))
	}
	s.psiG = r.Gauge("quality_drift_psi_permille", "score-distribution PSI against the pinned reference, x1000")
	s.driftG = r.Gauge("quality_drifted", "1 while the score distribution is drifted past the PSI threshold")
	s.toFlagH = r.Histogram("quality_windows_to_flag",
		"windows from first sight to first flag, per detected ransomware process",
		telemetry.DefaultCountBuckets())
	return s, nil
}

// Observe folds one classified window into the scorecard. The context
// carries the ground-truth label (if any) stamped upstream by WithLabel.
// Safe for concurrent use; inert on a nil receiver.
func (s *Scorecard) Observe(ctx context.Context, v Verdict) {
	if s == nil {
		return
	}
	lbl, labeled := LabelFrom(ctx)

	var driftEdge, nowDrifted bool
	var psi float64
	var samples int64

	s.mu.Lock()
	s.windows++
	if bin := scoreBin(v.Probability); bin >= 0 {
		s.scoreBins[bin]++
		s.scoreN++
	}
	outcome := ""
	if labeled {
		s.total.Observe(v.Flagged, lbl.Truth)
		outcome = outcomeName(v.Flagged, lbl.Truth)
		fam := s.familyLocked(lbl.Family)
		fam.confusion.Observe(v.Flagged, lbl.Truth)
		fam.windows++
	} else {
		s.unlabeled++
	}
	var toFlag float64
	var haveToFlag bool
	if st := s.procLocked(v.PID, lbl, labeled); st != nil {
		st.windows++
		if v.Flagged && !st.flagged {
			st.flagged = true
			s.flagged++
			if st.labeled && st.truth {
				toFlag, haveToFlag = float64(st.windows), true
				s.sampleLocked(&s.toFlag, toFlag)
			}
		}
		if v.Blocked && !st.blocked {
			st.blocked = true
			s.blocked++
			if st.labeled && st.truth {
				s.sampleLocked(&s.atRisk, float64(st.windows)*float64(s.cfg.BytesPerWindow))
			}
		}
	}
	samples = s.scoreN
	if s.cfg.Reference != nil && s.scoreN >= int64(s.cfg.MinDriftSamples) {
		psi = PSI(s.cfg.Reference.Bins, proportions(s.scoreBins[:], s.scoreN))
		nowDrifted = psi > s.cfg.DriftThreshold
		driftEdge = nowDrifted != s.drifted
		s.drifted = nowDrifted
	}
	s.mu.Unlock()

	// Telemetry and hooks outside the lock.
	s.windowsC.Inc()
	if outcome != "" {
		s.outcomeC[outcome].Inc()
	} else {
		s.unlabeledC.Inc()
	}
	if haveToFlag {
		s.toFlagH.Observe(int64(toFlag))
	}
	if s.cfg.Reference != nil {
		s.psiG.Set(int64(psi * 1000))
		if nowDrifted {
			s.driftG.Set(1)
		} else {
			s.driftG.Set(0)
		}
	}
	if labeled && s.cfg.SLO != nil {
		s.cfg.SLO(lbl.Truth, v.Flagged)
	}
	if driftEdge && s.cfg.Events != nil {
		name := EventDriftCleared
		lvl := eventlog.LevelInfo
		if nowDrifted {
			name = EventDriftDetected
			lvl = eventlog.LevelWarn
		}
		s.cfg.Events.Log(ctx, lvl, Component, name,
			eventlog.F("psi", psi),
			eventlog.F("threshold", s.cfg.DriftThreshold),
			eventlog.F("reference", s.cfg.Reference.Name),
			eventlog.F("samples", samples))
	}
}

// familyLocked returns (creating if within bounds) the per-family state;
// beyond MaxFamilies everything folds into FamilyOther.
func (s *Scorecard) familyLocked(family string) *familyState {
	if family == "" {
		family = FamilyUnknown
	}
	st, ok := s.families[family]
	if !ok {
		if len(s.families) >= s.cfg.MaxFamilies {
			family = FamilyOther
			if st, ok = s.families[family]; ok {
				return st
			}
		}
		st = &familyState{}
		s.families[family] = st
	}
	return st
}

// procLocked returns (creating if within bounds) per-PID latency state;
// nil when the PID map is full and this PID is new.
func (s *Scorecard) procLocked(pid int, lbl Label, labeled bool) *procState {
	st, ok := s.procs[pid]
	if !ok {
		if len(s.procs) >= s.cfg.MaxProcesses {
			s.dropped++
			return nil
		}
		st = &procState{truth: lbl.Truth, labeled: labeled}
		s.procs[pid] = st
	} else if labeled && !st.labeled {
		st.labeled, st.truth = true, lbl.Truth
	}
	return st
}

func (s *Scorecard) sampleLocked(dst *[]float64, v float64) {
	if len(*dst) >= maxLatencySamples {
		return
	}
	*dst = append(*dst, v)
}

func outcomeName(flagged, truth bool) string {
	switch {
	case flagged && truth:
		return "tp"
	case flagged && !truth:
		return "fp"
	case !flagged && truth:
		return "fn"
	default:
		return "tn"
	}
}

// ConfusionSnapshot is a confusion matrix with its derived rates.
type ConfusionSnapshot struct {
	TP int `json:"tp"`
	FP int `json:"fp"`
	TN int `json:"tn"`
	FN int `json:"fn"`
	// Rates are zero when their denominator is zero.
	Accuracy  float64 `json:"accuracy"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	// FPR is FP / (FP + TN): the fraction of benign windows flagged.
	FPR float64 `json:"fpr"`
}

func confusionSnapshot(c metrics.Confusion) ConfusionSnapshot {
	out := ConfusionSnapshot{
		TP: c.TP, FP: c.FP, TN: c.TN, FN: c.FN,
		Accuracy: c.Accuracy(), Precision: c.Precision(),
		Recall: c.Recall(), F1: c.F1(),
	}
	if c.FP+c.TN > 0 {
		out.FPR = float64(c.FP) / float64(c.FP+c.TN)
	}
	return out
}

// FamilySnapshot is one family's confusion slice.
type FamilySnapshot struct {
	Family string `json:"family"`
	ConfusionSnapshot
	Windows int64 `json:"windows"`
}

// LatencySnapshot summarizes a detection-latency sample (windows-to-flag
// or bytes-at-risk).
type LatencySnapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

func latencySnapshot(sample []float64) LatencySnapshot {
	out := LatencySnapshot{Count: int64(len(sample))}
	if len(sample) == 0 {
		return out
	}
	sum, err := metrics.Summarize(sample)
	if err != nil {
		return out
	}
	out.Mean, out.P50, out.Max = sum.Mean, sum.Median, sum.Max
	out.P99 = quantile(sample, 0.99)
	return out
}

// quantile returns the nearest-rank q-quantile of the sample.
func quantile(sample []float64, q float64) float64 {
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// ScoreBinSnapshot is one bin of the live score distribution.
type ScoreBinSnapshot struct {
	Low      float64 `json:"low"`
	High     float64 `json:"high"`
	Count    int64   `json:"count"`
	Fraction float64 `json:"fraction"`
}

// DriftSnapshot is the drift detector's judgment.
type DriftSnapshot struct {
	// Reference names the pinned distribution; empty when no reference
	// is configured (PSI is then always 0 and Drifted false).
	Reference string `json:"reference"`
	// RefSamples is the sample count the reference was built from.
	RefSamples int64 `json:"ref_samples"`
	// PSI is the population-stability index of live vs reference.
	PSI float64 `json:"psi"`
	// Threshold is the configured drift boundary.
	Threshold float64 `json:"threshold"`
	// Drifted is true while PSI exceeds the threshold (and the low-count
	// guard is satisfied).
	Drifted bool `json:"drifted"`
	// LowCount is true while too few live scores have been seen to judge
	// drift.
	LowCount bool `json:"low_count"`
}

// ProcessSnapshot summarizes per-PID tracking.
type ProcessSnapshot struct {
	Tracked int64 `json:"tracked"`
	Flagged int64 `json:"flagged"`
	Blocked int64 `json:"blocked"`
	// Dropped counts PIDs whose latency went untracked because the
	// process map hit its bound.
	Dropped int64 `json:"dropped"`
}

// Snapshot is the scorecard's full exported state — the /quality.json
// document. Zero state serializes with empty slices, never null.
type Snapshot struct {
	Time      time.Time         `json:"time"`
	Windows   int64             `json:"windows"`
	Labeled   int64             `json:"labeled"`
	Unlabeled int64             `json:"unlabeled"`
	Total     ConfusionSnapshot `json:"confusion"`
	Families  []FamilySnapshot  `json:"families"`
	Processes ProcessSnapshot   `json:"processes"`
	// WindowsToFlag is the detection-latency distribution: classified
	// windows from first sight to first flag, per detected ransomware
	// process.
	WindowsToFlag LatencySnapshot `json:"windows_to_flag"`
	// BytesAtRisk simulates the write volume a blocked ransomware
	// process got through before mitigation (windows-until-block ×
	// bytes-per-window).
	BytesAtRisk LatencySnapshot    `json:"bytes_at_risk"`
	ScoreBins   []ScoreBinSnapshot `json:"score_bins"`
	Drift       DriftSnapshot      `json:"drift"`
}

// Snapshot exports the scorecard's current state. Safe for concurrent use
// with Observe; returns a fully zeroed (but non-null) document on a nil
// receiver or before any observation.
func (s *Scorecard) Snapshot() Snapshot {
	out := Snapshot{
		Families:  []FamilySnapshot{},
		ScoreBins: make([]ScoreBinSnapshot, ScoreBins),
	}
	for i := range out.ScoreBins {
		out.ScoreBins[i].Low = float64(i) / ScoreBins
		out.ScoreBins[i].High = float64(i+1) / ScoreBins
	}
	if s == nil {
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out.Time = s.cfg.Clock()
	out.Windows = s.windows
	out.Unlabeled = s.unlabeled
	out.Labeled = s.windows - s.unlabeled
	out.Total = confusionSnapshot(s.total)
	for name, st := range s.families {
		fs := FamilySnapshot{Family: name, Windows: st.windows}
		fs.ConfusionSnapshot = confusionSnapshot(st.confusion)
		out.Families = append(out.Families, fs)
	}
	sort.Slice(out.Families, func(i, j int) bool { return out.Families[i].Family < out.Families[j].Family })
	out.Processes = ProcessSnapshot{
		Tracked: int64(len(s.procs)), Flagged: s.flagged,
		Blocked: s.blocked, Dropped: s.dropped,
	}
	out.WindowsToFlag = latencySnapshot(s.toFlag)
	out.BytesAtRisk = latencySnapshot(s.atRisk)
	for i, n := range s.scoreBins {
		out.ScoreBins[i].Count = n
		if s.scoreN > 0 {
			out.ScoreBins[i].Fraction = float64(n) / float64(s.scoreN)
		}
	}
	out.Drift.Threshold = s.cfg.DriftThreshold
	if ref := s.cfg.Reference; ref != nil {
		out.Drift.Reference = ref.Name
		out.Drift.RefSamples = ref.Samples
		out.Drift.LowCount = s.scoreN < int64(s.cfg.MinDriftSamples)
		if !out.Drift.LowCount {
			out.Drift.PSI = PSI(ref.Bins, proportions(s.scoreBins[:], s.scoreN))
			out.Drift.Drifted = out.Drift.PSI > s.cfg.DriftThreshold
		}
	}
	return out
}
