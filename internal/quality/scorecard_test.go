package quality

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/telemetry"
)

func ransomCtx(family string) context.Context {
	return WithLabel(context.Background(), Label{Truth: true, Family: family})
}

func benignCtx() context.Context {
	return WithLabel(context.Background(), Label{Truth: false, Family: "benign"})
}

func TestScorecardConfusion(t *testing.T) {
	card, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 3 TP, 1 FN for lockbit; 2 TN, 1 FP for benign; 1 unlabeled.
	for i := 0; i < 3; i++ {
		card.Observe(ransomCtx("lockbit"), Verdict{PID: 1, Probability: 0.9, Flagged: true})
	}
	card.Observe(ransomCtx("lockbit"), Verdict{PID: 2, Probability: 0.3})
	card.Observe(benignCtx(), Verdict{PID: 3, Probability: 0.1})
	card.Observe(benignCtx(), Verdict{PID: 3, Probability: 0.2})
	card.Observe(benignCtx(), Verdict{PID: 4, Probability: 0.8, Flagged: true})
	card.Observe(context.Background(), Verdict{PID: 5, Probability: 0.5})

	q := card.Snapshot()
	if q.Windows != 8 || q.Labeled != 7 || q.Unlabeled != 1 {
		t.Errorf("windows=%d labeled=%d unlabeled=%d, want 8/7/1", q.Windows, q.Labeled, q.Unlabeled)
	}
	if q.Total.TP != 3 || q.Total.FN != 1 || q.Total.TN != 2 || q.Total.FP != 1 {
		t.Errorf("confusion %+v, want tp=3 fn=1 tn=2 fp=1", q.Total)
	}
	if q.Total.Recall != 0.75 {
		t.Errorf("recall %v, want 0.75", q.Total.Recall)
	}
	if q.Total.FPR != 1.0/3 {
		t.Errorf("fpr %v, want 1/3", q.Total.FPR)
	}
	var fams []string
	for _, f := range q.Families {
		fams = append(fams, f.Family)
	}
	if len(q.Families) != 2 || q.Families[0].Family != "benign" || q.Families[1].Family != "lockbit" {
		t.Errorf("families %v, want sorted [benign lockbit]", fams)
	}
	if q.Families[1].TP != 3 || q.Families[1].FN != 1 {
		t.Errorf("lockbit slice %+v, want tp=3 fn=1", q.Families[1].ConfusionSnapshot)
	}
}

// TestScorecardDetectionLatency pins windows-to-flag and bytes-at-risk: a
// ransomware process flagged on its 3rd window and blocked on its 4th
// contributes exactly those latencies.
func TestScorecardDetectionLatency(t *testing.T) {
	card, err := New(Config{BytesPerWindow: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ctx := ransomCtx("ryuk")
	card.Observe(ctx, Verdict{PID: 9, Probability: 0.2})
	card.Observe(ctx, Verdict{PID: 9, Probability: 0.3})
	card.Observe(ctx, Verdict{PID: 9, Probability: 0.9, Flagged: true})
	card.Observe(ctx, Verdict{PID: 9, Probability: 0.9, Flagged: true, Blocked: true})

	q := card.Snapshot()
	if q.WindowsToFlag.Count != 1 || q.WindowsToFlag.P50 != 3 {
		t.Errorf("windows-to-flag %+v, want one sample at 3", q.WindowsToFlag)
	}
	if q.BytesAtRisk.Count != 1 || q.BytesAtRisk.P50 != 4000 {
		t.Errorf("bytes-at-risk %+v, want one sample at 4 windows x 1000 bytes", q.BytesAtRisk)
	}
	if q.Processes.Tracked != 1 || q.Processes.Flagged != 1 || q.Processes.Blocked != 1 {
		t.Errorf("processes %+v, want 1/1/1", q.Processes)
	}
	// A benign false positive must not pollute the ransomware
	// detection-latency sample.
	card.Observe(benignCtx(), Verdict{PID: 10, Probability: 0.8, Flagged: true})
	if q = card.Snapshot(); q.WindowsToFlag.Count != 1 {
		t.Errorf("benign FP leaked into windows-to-flag (count %d)", q.WindowsToFlag.Count)
	}
}

// TestScorecardSLOHook pins that every labeled verdict reaches the SLO
// hook with (truth, flagged) intact, and unlabeled ones do not.
func TestScorecardSLOHook(t *testing.T) {
	type call struct{ truth, flagged bool }
	var calls []call
	card, err := New(Config{SLO: func(truth, flagged bool) {
		calls = append(calls, call{truth, flagged})
	}})
	if err != nil {
		t.Fatal(err)
	}
	card.Observe(ransomCtx("cerber"), Verdict{PID: 1, Probability: 0.9, Flagged: true})
	card.Observe(benignCtx(), Verdict{PID: 2, Probability: 0.1})
	card.Observe(context.Background(), Verdict{PID: 3, Probability: 0.5, Flagged: true})
	want := []call{{true, true}, {false, false}}
	if len(calls) != len(want) {
		t.Fatalf("SLO hook called %d times, want %d (unlabeled verdicts skipped)", len(calls), len(want))
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Errorf("call %d = %+v, want %+v", i, calls[i], want[i])
		}
	}
}

// TestScorecardFamilyFold pins the cardinality bound: families beyond
// MaxFamilies fold into FamilyOther instead of growing the map.
func TestScorecardFamilyFold(t *testing.T) {
	card, err := New(Config{MaxFamilies: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		card.Observe(ransomCtx(fmt.Sprintf("fam%d", i)), Verdict{PID: i, Probability: 0.9, Flagged: true})
	}
	q := card.Snapshot()
	// 3 distinct families, then the map is full: the 4th insert folds to
	// "other" (which itself takes the last slot via the fold path).
	var other *FamilySnapshot
	for i := range q.Families {
		if q.Families[i].Family == FamilyOther {
			other = &q.Families[i]
		}
	}
	if other == nil {
		t.Fatalf("no %q bucket in %+v", FamilyOther, q.Families)
	}
	if other.TP != 3 {
		t.Errorf("other bucket tp=%d, want the 3 folded families", other.TP)
	}
	if len(q.Families) > 4 {
		t.Errorf("%d family buckets, want bounded at 4 (3 + other)", len(q.Families))
	}
}

// TestScorecardProcessCap pins the PID bound: new processes beyond
// MaxProcesses still score into the confusion matrix but their latency
// tracking is dropped and counted.
func TestScorecardProcessCap(t *testing.T) {
	card, err := New(Config{MaxProcesses: 2})
	if err != nil {
		t.Fatal(err)
	}
	for pid := 1; pid <= 5; pid++ {
		card.Observe(ransomCtx("virlock"), Verdict{PID: pid, Probability: 0.9, Flagged: true})
	}
	q := card.Snapshot()
	if q.Total.TP != 5 {
		t.Errorf("tp=%d, want all 5 windows scored despite the PID cap", q.Total.TP)
	}
	if q.Processes.Tracked != 2 || q.Processes.Dropped != 3 {
		t.Errorf("processes %+v, want 2 tracked / 3 dropped", q.Processes)
	}
	if q.WindowsToFlag.Count != 2 {
		t.Errorf("windows-to-flag count %d, want only the 2 tracked PIDs", q.WindowsToFlag.Count)
	}
}

// TestScorecardNilInert pins the stack-wide convention: a nil *Scorecard
// absorbs every call and snapshots to the zeroed document.
func TestScorecardNilInert(t *testing.T) {
	var card *Scorecard
	card.Observe(ransomCtx("locky"), Verdict{PID: 1, Probability: 0.9, Flagged: true})
	q := card.Snapshot()
	if q.Windows != 0 {
		t.Errorf("nil scorecard counted %d windows", q.Windows)
	}
	if q.Families == nil || len(q.ScoreBins) != ScoreBins {
		t.Errorf("nil snapshot families=%v bins=%d, want empty slice and %d bins", q.Families, len(q.ScoreBins), ScoreBins)
	}
}

// TestScorecardZeroStateJSON pins the /quality.json zero state: no null
// anywhere a consumer would iterate.
func TestScorecardZeroStateJSON(t *testing.T) {
	card, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*Scorecard{card, nil} {
		raw, err := json.Marshal(c.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(raw), "null") {
			t.Errorf("zero-state snapshot serializes null: %s", raw)
		}
		var back Snapshot
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if back.Families == nil || len(back.ScoreBins) != ScoreBins {
			t.Errorf("zero state families=%v bins=%d, want [] and %d bins", back.Families, len(back.ScoreBins), ScoreBins)
		}
	}
}

// TestScorecardDriftEvents drives the live distribution away from a pinned
// reference and pins the detected -> cleared event edges.
func TestScorecardDriftEvents(t *testing.T) {
	low := make([]float64, ScoreBins)
	low[1] = 1 // reference: all scores near 0.15
	events := eventlog.New(eventlog.Config{})
	card, err := New(Config{
		Events:          events,
		Reference:       &Reference{Name: "low", Samples: 100, Bins: low},
		MinDriftSamples: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := benignCtx()
	// Phase 1: live matches the reference — no drift.
	for i := 0; i < 20; i++ {
		card.Observe(ctx, Verdict{PID: 1, Probability: 0.15})
	}
	if q := card.Snapshot(); q.Drift.Drifted || q.Drift.LowCount {
		t.Fatalf("drift %+v after matching traffic, want stable", q.Drift)
	}
	// Phase 2: flood the top bin until the mix crosses the PSI threshold.
	for i := 0; i < 200; i++ {
		card.Observe(ctx, Verdict{PID: 1, Probability: 0.95, Flagged: true})
	}
	q := card.Snapshot()
	if !q.Drift.Drifted || q.Drift.PSI <= q.Drift.Threshold {
		t.Fatalf("drift %+v after a distribution flip, want drifted", q.Drift)
	}
	var detected bool
	for _, e := range events.Recent() {
		if e.Name == EventDriftDetected && e.Component == Component {
			detected = true
		}
	}
	if !detected {
		t.Errorf("no %s event in the stream", EventDriftDetected)
	}
}

// TestScorecardLowCountGuard pins that drift is never declared before
// MinDriftSamples live scores, however alien the early traffic looks.
func TestScorecardLowCountGuard(t *testing.T) {
	low := make([]float64, ScoreBins)
	low[0] = 1
	card, err := New(Config{
		Reference:       &Reference{Name: "low", Samples: 100, Bins: low},
		MinDriftSamples: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 49; i++ {
		card.Observe(benignCtx(), Verdict{PID: 1, Probability: 0.99, Flagged: true})
	}
	q := card.Snapshot()
	if !q.Drift.LowCount || q.Drift.Drifted {
		t.Errorf("drift %+v at 49/50 samples, want low-count guard holding", q.Drift)
	}
}

func TestScorecardTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	card, err := New(Config{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	card.Observe(ransomCtx("chimera"), Verdict{PID: 1, Probability: 0.9, Flagged: true})
	card.Observe(context.Background(), Verdict{PID: 2, Probability: 0.5})
	want := map[string]bool{
		"quality_windows_total":   false,
		"quality_unlabeled_total": false,
		"quality_verdicts_total":  false,
		"quality_windows_to_flag": false,
	}
	for _, m := range reg.Snapshot() {
		if _, ok := want[m.Name]; ok {
			want[m.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("series %s missing from the registry", name)
		}
	}
}

func TestScorecardHandler(t *testing.T) {
	card, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	card.Observe(ransomCtx("wannacry"), Verdict{PID: 1, Probability: 0.9, Flagged: true})
	srv := httptest.NewServer(card.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q", ct)
	}
	var q Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	if q.Total.TP != 1 {
		t.Errorf("served snapshot %+v, want tp=1", q.Total)
	}

	post, err := srv.Client().Post(srv.URL+"/", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", post.StatusCode)
	}

	// A nil scorecard still serves the zeroed document.
	var nilCard *Scorecard
	nilSrv := httptest.NewServer(nilCard.Handler())
	defer nilSrv.Close()
	nilResp, err := nilSrv.Client().Get(nilSrv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer nilResp.Body.Close()
	var zero Snapshot
	if err := json.NewDecoder(nilResp.Body).Decode(&zero); err != nil {
		t.Fatal(err)
	}
	if zero.Windows != 0 || len(zero.ScoreBins) != ScoreBins {
		t.Errorf("nil handler served %+v", zero)
	}
}

// TestScorecardConcurrent hammers one scorecard from 64 goroutines mixing
// observes and snapshots — the -race pin for the locking discipline. The
// final bookkeeping must still be exact.
func TestScorecardConcurrent(t *testing.T) {
	reg := telemetry.NewRegistry()
	events := eventlog.New(eventlog.Config{})
	low := make([]float64, ScoreBins)
	low[1] = 1
	card, err := New(Config{
		Telemetry:       reg,
		Events:          events,
		Reference:       &Reference{Name: "low", Samples: 100, Bins: low},
		MinDriftSamples: 10,
		SLO:             func(truth, flagged bool) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	const callers, perCaller = 64, 200
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			truth := g%2 == 0
			ctx := benignCtx()
			p := 0.15
			if truth {
				ctx = ransomCtx("teslacrypt")
				p = 0.95
			}
			for i := 0; i < perCaller; i++ {
				card.Observe(ctx, Verdict{PID: g, Probability: p, Flagged: truth})
				if i%50 == 0 {
					_ = card.Snapshot()
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent observers deadlocked")
	}
	q := card.Snapshot()
	half := int64(callers / 2 * perCaller)
	if q.Windows != callers*perCaller {
		t.Errorf("windows %d, want %d", q.Windows, callers*perCaller)
	}
	if int64(q.Total.TP) != half || int64(q.Total.TN) != half || q.Total.FP != 0 || q.Total.FN != 0 {
		t.Errorf("confusion %+v, want tp=tn=%d fp=fn=0", q.Total, half)
	}
	if q.Processes.Tracked != callers {
		t.Errorf("tracked %d, want %d", q.Processes.Tracked, callers)
	}
}
