package quality

import (
	"math"
	"path/filepath"
	"testing"
)

func TestScoreBin(t *testing.T) {
	cases := []struct {
		p    float64
		want int
	}{
		{0, 0}, {0.05, 0}, {0.1, 1}, {0.55, 5}, {0.99, 9}, {1.0, 9},
		{-0.1, -1}, {1.1, -1}, {math.NaN(), -1},
	}
	for _, c := range cases {
		if got := scoreBin(c.p); got != c.want {
			t.Errorf("scoreBin(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

// TestPSIGolden pins the drift metric against hand-checkable distributions:
// identical distributions score ~0, a hard shift scores past the 0.2
// significance boundary, and a mismatched reference screams +Inf.
func TestPSIGolden(t *testing.T) {
	uniform := make([]float64, ScoreBins)
	for i := range uniform {
		uniform[i] = 1.0 / ScoreBins
	}
	if psi := PSI(uniform, uniform); psi > 1e-9 {
		t.Errorf("PSI(identical) = %v, want ~0", psi)
	}

	// All mass moved into the top bin: a catastrophic shift, far past 0.2.
	shifted := make([]float64, ScoreBins)
	shifted[ScoreBins-1] = 1
	if psi := PSI(uniform, shifted); psi <= DefaultDriftThreshold {
		t.Errorf("PSI(uniform -> point mass) = %v, want > %v", psi, DefaultDriftThreshold)
	}

	// A mild perturbation stays under the significance boundary.
	mild := append([]float64(nil), uniform...)
	mild[0] += 0.02
	mild[1] -= 0.02
	if psi := PSI(uniform, mild); psi >= 0.1 {
		t.Errorf("PSI(mild 2%% shift) = %v, want < 0.1", psi)
	}

	if psi := PSI(uniform[:3], uniform); !math.IsInf(psi, 1) {
		t.Errorf("PSI(mismatched lengths) = %v, want +Inf", psi)
	}

	// PSI is symmetric in sign of contribution: swapping arguments gives
	// the same value (each term is (l-r)ln(l/r) = (r-l)ln(r/l)).
	if a, b := PSI(uniform, shifted), PSI(shifted, uniform); math.Abs(a-b) > 1e-9 {
		t.Errorf("PSI asymmetric: %v vs %v", a, b)
	}
}

func TestReferenceValidate(t *testing.T) {
	good := make([]float64, ScoreBins)
	for i := range good {
		good[i] = 1.0 / ScoreBins
	}
	cases := []struct {
		name string
		ref  *Reference
		ok   bool
	}{
		{"nil", nil, false},
		{"good", &Reference{Name: "g", Samples: 10, Bins: good}, true},
		{"short", &Reference{Name: "s", Bins: good[:5]}, false},
		{"negative", &Reference{Name: "n", Bins: append([]float64{-0.1}, good[1:]...)}, false},
		{"sum", &Reference{Name: "sum", Bins: append([]float64{0.5}, good[1:]...)}, false},
	}
	for _, c := range cases {
		err := c.ref.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestNewReference(t *testing.T) {
	scores := []float64{0.05, 0.05, 0.95, 0.95, math.NaN(), -1, 2}
	ref, err := NewReference("unit", scores)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Samples != 4 {
		t.Errorf("samples %d, want 4 (out-of-range scores dropped)", ref.Samples)
	}
	if ref.Bins[0] != 0.5 || ref.Bins[ScoreBins-1] != 0.5 {
		t.Errorf("bins %v, want half in bin 0 and half in the top bin", ref.Bins)
	}
	if _, err := NewReference("empty", []float64{math.NaN()}); err == nil {
		t.Error("NewReference accepted zero in-range scores")
	}
}

func TestReferenceFromSnapshot(t *testing.T) {
	card, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithLabel(t.Context(), Label{Truth: false, Family: "benign"})
	for i := 0; i < 50; i++ {
		card.Observe(ctx, Verdict{PID: 1, Probability: 0.15})
	}
	ref, err := ReferenceFrom("pinned", card.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if ref.Samples != 50 || ref.Bins[1] != 1 {
		t.Errorf("reference %+v, want 50 samples all in bin 1", ref)
	}
	if _, err := ReferenceFrom("empty", Snapshot{}); err == nil {
		t.Error("ReferenceFrom accepted an empty snapshot")
	}
}

func TestReferenceFileRoundTrip(t *testing.T) {
	ref, err := NewReference("roundtrip", []float64{0.1, 0.2, 0.3, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ref.json")
	if err := WriteReference(path, ref); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReference(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != ref.Name || back.Samples != ref.Samples {
		t.Errorf("round-trip lost identity: %+v vs %+v", back, ref)
	}
	for i := range ref.Bins {
		if back.Bins[i] != ref.Bins[i] {
			t.Errorf("bin %d: %v vs %v", i, back.Bins[i], ref.Bins[i])
		}
	}
	if _, err := LoadReference(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("LoadReference succeeded on a missing file")
	}
}
