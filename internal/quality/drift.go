package quality

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// ScoreBins is the number of equal-width probability bins the live score
// distribution (and every Reference) is discretized into over [0,1].
const ScoreBins = 10

// psiEpsilon floors bin proportions before the log-ratio so empty bins on
// either side contribute a large-but-finite PSI term instead of ±Inf.
const psiEpsilon = 1e-4

// scoreBin maps a probability to its bin index, or -1 for out-of-range
// garbage (NaN, negative, >1). Probability 1.0 lands in the top bin.
func scoreBin(p float64) int {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return -1
	}
	bin := int(p * ScoreBins)
	if bin == ScoreBins {
		bin = ScoreBins - 1
	}
	return bin
}

// proportions converts bin counts to fractions of the total.
func proportions(bins []int64, total int64) []float64 {
	out := make([]float64, len(bins))
	if total <= 0 {
		return out
	}
	for i, n := range bins {
		out[i] = float64(n) / float64(total)
	}
	return out
}

// PSI computes the population-stability index between a reference and a
// live proportion vector: Σ (live_i − ref_i) · ln(live_i / ref_i), with
// both sides floored at a small epsilon. By convention PSI < 0.1 is
// stable, 0.1–0.2 a moderate shift, > 0.2 a significant one. Mismatched
// lengths return +Inf (a misconfigured reference should scream, not pass).
func PSI(ref, live []float64) float64 {
	if len(ref) != len(live) {
		return math.Inf(1)
	}
	var psi float64
	for i := range ref {
		r := math.Max(ref[i], psiEpsilon)
		l := math.Max(live[i], psiEpsilon)
		psi += (l - r) * math.Log(l/r)
	}
	return psi
}

// Reference is a pinned score distribution: the proportion of verdict
// probabilities per bin observed in a known-good run, checked in under
// bench-results/ and compared against live traffic by the drift detector.
type Reference struct {
	// Name identifies the reference run (shown in drift events and the
	// /quality.json document).
	Name string `json:"name"`
	// Samples is the number of scores the reference was built from.
	Samples int64 `json:"samples"`
	// Bins are the per-bin proportions; must have length ScoreBins and
	// sum to ~1.
	Bins []float64 `json:"bins"`
}

// Validate checks the reference is usable for PSI comparison.
func (r *Reference) Validate() error {
	if r == nil {
		return fmt.Errorf("quality: nil reference")
	}
	if len(r.Bins) != ScoreBins {
		return fmt.Errorf("quality: reference %q has %d bins, want %d", r.Name, len(r.Bins), ScoreBins)
	}
	var sum float64
	for i, b := range r.Bins {
		if math.IsNaN(b) || b < 0 {
			return fmt.Errorf("quality: reference %q bin %d is %v", r.Name, i, b)
		}
		sum += b
	}
	if math.Abs(sum-1) > 0.01 {
		return fmt.Errorf("quality: reference %q bins sum to %v, want ~1", r.Name, sum)
	}
	return nil
}

// NewReference builds a reference from raw scores (e.g. an offline
// known-good run) — the counterpart of LoadReference for generating the
// pinned file in the first place.
func NewReference(name string, scores []float64) (*Reference, error) {
	var bins [ScoreBins]int64
	var total int64
	for _, p := range scores {
		if b := scoreBin(p); b >= 0 {
			bins[b]++
			total++
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("quality: reference %q built from zero in-range scores", name)
	}
	return &Reference{Name: name, Samples: total, Bins: proportions(bins[:], total)}, nil
}

// ReferenceFrom pins a snapshot's live score distribution as a reference —
// how a known-good run (e.g. csdbench's quality experiment) becomes the
// checked-in baseline future runs drift against.
func ReferenceFrom(name string, snap Snapshot) (*Reference, error) {
	bins := make([]float64, len(snap.ScoreBins))
	var total int64
	for i, b := range snap.ScoreBins {
		bins[i] = b.Fraction
		total += b.Count
	}
	if total == 0 {
		return nil, fmt.Errorf("quality: reference %q built from an empty snapshot", name)
	}
	r := &Reference{Name: name, Samples: total, Bins: bins}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// LoadReference reads a pinned reference distribution from a JSON file.
func LoadReference(path string) (*Reference, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("quality: read reference: %w", err)
	}
	var r Reference
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("quality: parse reference %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// WriteReference writes a reference distribution as indented JSON.
func WriteReference(path string, r *Reference) error {
	if err := r.Validate(); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
