package quality

import (
	"context"
	"strings"
	"testing"
)

func TestSanitizeFamily(t *testing.T) {
	cases := []struct{ in, want string }{
		{"lockbit", "lockbit"},
		{"LockBit", "lockbit"},
		{"Locky.AA", "locky-aa"},
		{"tesla crypt", "tesla-crypt"},
		{"--ryuk--", "ryuk"},
		{"bad__rabbit", "bad-rabbit"},
		{"", FamilyUnknown},
		{"!!!", FamilyUnknown},
		{"CRYPTOWALL4", "cryptowall4"},
		{strings.Repeat("a", 100), strings.Repeat("a", maxFamilyLen)},
		// A dash that would land exactly at the length bound is dropped
		// rather than emitted trailing.
		{strings.Repeat("a", maxFamilyLen-1) + ".b", strings.Repeat("a", maxFamilyLen-1)},
	}
	for _, c := range cases {
		if got := SanitizeFamily(c.in); got != c.want {
			t.Errorf("SanitizeFamily(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSanitizeFamilyIdempotent(t *testing.T) {
	for _, s := range []string{"Locky.AA", "  spaces  ", "", "x", "WannaCry-2.0"} {
		once := SanitizeFamily(s)
		if twice := SanitizeFamily(once); twice != once {
			t.Errorf("not idempotent on %q: %q -> %q", s, once, twice)
		}
	}
}

func TestLabelRoundTrip(t *testing.T) {
	ctx := context.Background()
	if _, ok := LabelFrom(ctx); ok {
		t.Fatal("bare context claims to carry a label")
	}
	ctx = WithLabel(ctx, Label{Truth: true, Family: "LockBit.Green"})
	l, ok := LabelFrom(ctx)
	if !ok {
		t.Fatal("label lost in transit")
	}
	if !l.Truth || l.Family != "lockbit-green" {
		t.Errorf("got %+v, want truth with sanitized family lockbit-green", l)
	}
}

// FuzzQualityLabel pins the sanitation invariants for arbitrary family
// strings: bounded length, the [a-z0-9-] alphabet with no edge dashes,
// never empty, idempotent, and a lossless context round-trip of the
// sanitized form.
func FuzzQualityLabel(f *testing.F) {
	for _, seed := range []string{"lockbit", "Locky.AA", "", "!!!", "--x--", strings.Repeat("Z", 80), "a.b.c", "田ryuk田"} {
		f.Add(seed, true)
	}
	f.Fuzz(func(t *testing.T, family string, truth bool) {
		got := SanitizeFamily(family)
		if got == "" {
			t.Fatalf("SanitizeFamily(%q) produced an empty family", family)
		}
		if len(got) > maxFamilyLen {
			t.Fatalf("SanitizeFamily(%q) = %q exceeds %d bytes", family, got, maxFamilyLen)
		}
		for i := 0; i < len(got); i++ {
			c := got[i]
			legal := (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-'
			if !legal {
				t.Fatalf("SanitizeFamily(%q) = %q contains illegal byte %q", family, got, c)
			}
		}
		if got[0] == '-' || got[len(got)-1] == '-' {
			t.Fatalf("SanitizeFamily(%q) = %q has an edge dash", family, got)
		}
		if again := SanitizeFamily(got); again != got {
			t.Fatalf("not idempotent: SanitizeFamily(%q) = %q, then %q", family, got, again)
		}
		ctx := WithLabel(context.Background(), Label{Truth: truth, Family: family})
		l, ok := LabelFrom(ctx)
		if !ok {
			t.Fatal("label lost in context round-trip")
		}
		if l.Truth != truth || l.Family != got {
			t.Fatalf("round-trip %+v, want truth=%v family=%q", l, truth, got)
		}
	})
}
