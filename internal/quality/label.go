// Package quality is observability layer 6: the live detection-quality
// scorecard. The five layers below it (telemetry, trace, eventlog/incident,
// slo, prof) watch how fast the stack serves verdicts; this one watches
// whether the verdicts are *right*. Ground-truth labels ride the request
// context (WithLabel / LabelFrom, mirroring infer's tenant plumbing), get
// stamped by whoever generates the traffic — sandbox profiles, csdload's
// synthetic PID population, csddetect's demo pipeline — and are consumed
// where detect emits window verdicts. The Scorecard folds every labeled
// verdict into an online confusion matrix (overall and per ransomware
// family), detection-latency distributions measured the way the related
// work does (windows-until-flagged, simulated bytes-written-before-block),
// and a score-distribution histogram with a PSI-based drift detector
// against a pinned Reference.
//
// Import discipline: quality sits below detect/incident/slo in the
// dependency order (detect imports quality, incident imports detect, slo
// imports incident), so this package must only import telemetry, eventlog,
// and metrics. The SLO feedback loop is a plain func hook (Config.SLO)
// that callers wire to slo.Evaluator.Quality.
package quality

import "context"

// Label is the ground truth riding a request context: whether the process
// behind the API-call sequence is actually ransomware, and which family
// (or benign archetype) generated it.
type Label struct {
	// Truth is true when the traffic source is ransomware.
	Truth bool
	// Family names the generating family ("wannacry", "lockbit", ...) or
	// benign archetype; it is sanitized to a bounded, telemetry-legal
	// value by WithLabel.
	Family string
}

type labelKey struct{}

// WithLabel stamps a ground-truth label onto the context. The family
// string is sanitized (see SanitizeFamily) so downstream consumers can use
// it as a bounded telemetry label value verbatim.
func WithLabel(ctx context.Context, l Label) context.Context {
	l.Family = SanitizeFamily(l.Family)
	return context.WithValue(ctx, labelKey{}, l)
}

// LabelFrom returns the ground-truth label stamped on the context, if any.
func LabelFrom(ctx context.Context) (Label, bool) {
	l, ok := ctx.Value(labelKey{}).(Label)
	return l, ok
}

// maxFamilyLen bounds sanitized family names; real family names top out
// around "teslacrypt" (10 runes), so 24 leaves headroom without letting a
// hostile label explode series cardinality via sheer length.
const maxFamilyLen = 24

// FamilyUnknown is the sanitized form of an empty or fully-illegal family
// string.
const FamilyUnknown = "unknown"

// SanitizeFamily maps an arbitrary family string onto the bounded
// vocabulary used for telemetry labels and per-family breakdowns:
// lowercase [a-z0-9-], at most 24 bytes, never empty (illegal input
// collapses to FamilyUnknown). Runs of other characters become a single
// '-'; leading/trailing '-' are trimmed. The function is idempotent:
// SanitizeFamily(SanitizeFamily(s)) == SanitizeFamily(s).
func SanitizeFamily(s string) string {
	out := make([]byte, 0, maxFamilyLen)
	pendingDash := false
	for i := 0; i < len(s) && len(out) < maxFamilyLen; i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z':
			c += 'a' - 'A'
			fallthrough
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			if pendingDash && len(out) > 0 {
				if len(out)+2 > maxFamilyLen {
					// No room for dash + character: stop rather than
					// emit a trailing dash.
					i = len(s)
					continue
				}
				out = append(out, '-')
			}
			pendingDash = false
			out = append(out, c)
		default:
			pendingDash = true
		}
	}
	if len(out) == 0 {
		return FamilyUnknown
	}
	return string(out)
}
