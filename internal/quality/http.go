package quality

import (
	"encoding/json"
	"net/http"
)

// Handler serves the scorecard snapshot as the /quality.json document.
// Mount it via telemetry.HTTPOptions.Extra. A nil scorecard serves the
// zeroed (never null) document, matching the zero-state convention of
// /spans.json and /incidents.json.
func (s *Scorecard) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Snapshot())
	})
}
