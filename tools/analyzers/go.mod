module github.com/kfrida1/csdinf/tools/analyzers

go 1.24
