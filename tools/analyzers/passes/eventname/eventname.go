// Package eventname enforces the structured event log's naming contract:
// event names are dot-scoped lowercase literals ("engine.deploy",
// "transfer.p2p") or named constants — never built at runtime. Dynamic
// names defeat grep, the forensics timeline's grouping, and the
// EventLogger's ability to enumerate its vocabulary.
//
// Without a type checker the pass recognizes logger calls by shape: a
// method call named Debug/Info/Warn/Error/Log/LogPID/LogDevice whose
// receiver is a value (not an imported package — that exclusion keeps
// http.Error and math.Log out) and whose first argument looks like a
// context. The name argument sits at index 2 for the level methods and
// index 3 for Log/LogPID/LogDevice, matching internal/eventlog's Logger.
//
// The pass also pins the component vocabulary: a literal component must
// come from the known set below, so a typo ("serv", "flete") cannot fork
// the forensics timeline's grouping. New layers add themselves to the list
// in the same change that introduces their events.
package eventname

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"

	"github.com/kfrida1/csdinf/tools/analyzers/analysis"
)

// namePattern is the event-name grammar: at least two dot-separated
// lowercase segments, hyphens and underscores allowed after the first
// character of a segment ("transfer.via-host", "engine.drc_finding").
var namePattern = regexp.MustCompile(`^[a-z][a-z0-9_-]*(\.[a-z0-9_-]+)+$`)

// nameArgIndex maps logger method names to the position of the event-name
// argument; minimum arity is index+1 (Log, LogPID, and LogDevice all carry
// level and component before the name).
var nameArgIndex = map[string]int{
	"Debug": 2, "Info": 2, "Warn": 2, "Error": 2,
	"Log": 3, "LogPID": 3, "LogDevice": 3,
}

// knownComponents is the event-emitting layer vocabulary. The component
// argument always sits immediately before the event name.
var knownComponents = map[string]bool{
	"core": true, "csd": true, "cti": true, "detect": true,
	"device": true, "engine": true, "fleet": true, "incident": true,
	"load": true, "prof": true, "quality": true, "serve": true, "slo": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "eventname",
	Doc:  "event log names must be dot-scoped lowercase literals or named constants",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			idx, ok := nameArgIndex[sel.Sel.Name]
			if !ok || len(call.Args) <= idx {
				return true
			}
			// Skip package-qualified functions (http.Error, math.Log):
			// the receiver of a logger call is a value, never an import.
			if ident, ok := sel.X.(*ast.Ident); ok {
				if _, imported := f.Imports[ident.Name]; imported {
					return true
				}
			}
			if !looksLikeContext(call.Args[0]) {
				return true
			}
			checkComponent(pass, f, call.Args[idx-1])
			checkName(pass, f, call.Args[idx])
			return true
		})
	}
}

// looksLikeContext reports whether expr is plausibly a context argument: the
// conventional ctx identifier, a field selection ending in ctx/Context, or
// any call (context.Background(), trace.WithJob(...), jobCtx(...)).
func looksLikeContext(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name == "ctx" || strings.HasSuffix(e.Name, "Ctx")
	case *ast.SelectorExpr:
		name := e.Sel.Name
		return name == "ctx" || strings.HasSuffix(name, "Ctx") || strings.HasSuffix(name, "Context")
	case *ast.CallExpr:
		return true
	}
	return false
}

// checkComponent flags literal components outside the known vocabulary.
// Non-literal components (constants, parameters) are assumed to carry a
// checked literal from their declaration site.
func checkComponent(pass *analysis.Pass, f *analysis.File, arg ast.Expr) {
	lit, ok := arg.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	comp, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !knownComponents[comp] {
		pass.Reportf(f, lit.Pos(),
			"event component %q is not a known emitting layer; add it to the eventname analyzer's vocabulary if this is a new subsystem",
			comp)
	}
}

func checkName(pass *analysis.Pass, f *analysis.File, arg ast.Expr) {
	switch e := arg.(type) {
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return
		}
		name, err := strconv.Unquote(e.Value)
		if err != nil {
			return
		}
		if !namePattern.MatchString(name) {
			pass.Reportf(f, e.Pos(),
				"event name %q is not dot-scoped lowercase (want component.action like %q)",
				name, "engine.deploy")
		}
	case *ast.Ident:
		// Assumed to be a named constant (or a parameter carrying one);
		// the constant's declaration site is where the literal is checked.
	case *ast.SelectorExpr:
		// pkg.Constant or struct field — assumed constant.
	default:
		pass.Reportf(f, arg.Pos(),
			"event name must be a string literal or named constant, not built at runtime; name the variants as constants and select between them")
	}
}
