package eventname

import (
	"strings"
	"testing"

	"github.com/kfrida1/csdinf/tools/analyzers/analysis"
)

func runOn(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	pkg, err := analysis.PackageFromSource("internal/demo", map[string]string{"a.go": src})
	if err != nil {
		t.Fatal(err)
	}
	return analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{Analyzer})
}

const header = `package demo

import (
	"context"

	"github.com/kfrida1/csdinf/internal/eventlog"
)

const evSwap = "model.swap"

func emit(ctx context.Context, l *eventlog.Logger, path string, lvl eventlog.Level) {
`

func TestDynamicNameIsFlagged(t *testing.T) {
	src := header + `
	l.Debug(ctx, "csd", "transfer."+path)
	l.Info(ctx, "csd", "transfer.p2p")
	l.Warn(ctx, "detect", evSwap)
}
`
	diags := runOn(t, src)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "built at runtime") {
		t.Fatalf("diagnostics = %v, want one runtime-name finding", diags)
	}
}

func TestNonDotScopedLiteralIsFlagged(t *testing.T) {
	src := header + `
	l.Info(ctx, "serve", "Dispatched")
	l.Error(ctx, "serve", "queue")
	l.Info(ctx, "csd", "transfer.via-host")
	l.Info(ctx, "core", "engine.drc_finding")
}
`
	diags := runOn(t, src)
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want 2 (Dispatched, queue)", diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "dot-scoped") {
			t.Fatalf("unexpected message: %s", d.Message)
		}
	}
}

func TestLogAndLogPIDNamePosition(t *testing.T) {
	src := header + `
	l.Log(ctx, lvl, "detect", "window alert")
	l.LogPID(ctx, lvl, "detect", "process.track", 42)
	l.LogPID(ctx, lvl, "detect", "track-"+path, 42)
}
`
	diags := runOn(t, src)
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want 2 (bad literal, dynamic)", diags)
	}
}

// TestPackageFunctionsAreNotLoggerCalls pins the import-receiver exclusion:
// http.Error and math.Log share method names with the logger but must not
// be treated as event emissions.
func TestPackageFunctionsAreNotLoggerCalls(t *testing.T) {
	src := `package demo

import (
	"math"
	"net/http"
)

func f(w http.ResponseWriter) {
	http.Error(w, "bad request", 400)
	_ = math.Log(2.0)
}
`
	if diags := runOn(t, src); len(diags) != 0 {
		t.Fatalf("package functions flagged: %v", diags)
	}
}

// TestNonContextFirstArgIgnored pins the context heuristic: a 3+-arg method
// whose first argument is not context-shaped is not a logger call.
func TestNonContextFirstArgIgnored(t *testing.T) {
	src := `package demo

type enc struct{}

func (enc) Error(a, b, c string) {}

func f(e enc, s string) { e.Error(s, s, "not an event "+s) }
`
	if diags := runOn(t, src); len(diags) != 0 {
		t.Fatalf("non-logger method flagged: %v", diags)
	}
}

func TestContextValuedCallsAndAllow(t *testing.T) {
	src := header + `
	l.LogPID(withJob(ctx), lvl, "detect", "Window.Alert", 7)
	l.Info(context.Background(), "cti", "swap-"+path) //csdlint:allow eventname names enumerated in docs
}

func withJob(ctx context.Context) context.Context { return ctx }
`
	diags := runOn(t, src)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, `"Window.Alert"`) {
		t.Fatalf("diagnostics = %v, want only the bad literal through withJob", diags)
	}
}

// TestLogDeviceNamePosition pins the LogDevice shape: component at index 2,
// event name at index 3, device attribution after the name.
func TestLogDeviceNamePosition(t *testing.T) {
	src := header + `
	l.LogDevice(ctx, lvl, "fleet", "fleet.node.fail", "csd-000")
	l.LogDevice(ctx, lvl, "device", "device.rejoin", "csd-001")
	l.LogDevice(ctx, lvl, "fleet", "retried", "csd-000")
	l.LogDevice(ctx, lvl, "fleet", "retry."+path, "csd-000")
}
`
	diags := runOn(t, src)
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want 2 (bad literal, dynamic)", diags)
	}
}

// TestSLOAndLoadComponentsAreKnown pins the vocabulary growth from the SLO
// engine and load generator: "slo" and "load" are legitimate emitting layers
// and their dot-scoped events lint clean.
func TestSLOAndLoadComponentsAreKnown(t *testing.T) {
	src := header + `
	l.Info(ctx, "slo", "slo.budget.exhausted")
	l.Error(ctx, "slo", "slo.burn.alert")
	l.Info(ctx, "load", "load.run.start")
	l.Info(ctx, "load", "load.chaos.step")
}
`
	if diags := runOn(t, src); len(diags) != 0 {
		t.Fatalf("slo/load events flagged: %v", diags)
	}
}

// TestProfComponentIsKnown pins the vocabulary growth from the continuous
// profiler: "prof" is a legitimate emitting layer, and its sampler and
// flight-recorder events lint clean while a near-miss component still trips
// the vocabulary check.
func TestProfComponentIsKnown(t *testing.T) {
	src := header + `
	l.Info(ctx, "prof", "prof.start")
	l.Debug(ctx, "prof", "prof.sample")
	l.Warn(ctx, "prof", "prof.flight.dump")
	l.Warn(ctx, "porf", "prof.flight.dump")
}
`
	diags := runOn(t, src)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, `"porf"`) {
		t.Fatalf("diagnostics = %v, want only the misspelled component", diags)
	}
}

// TestQualityComponentIsKnown pins the vocabulary growth from the
// detection-quality scorecard: "quality" is a legitimate emitting layer and
// its drift-edge events lint clean while a near-miss component still trips
// the vocabulary check.
func TestQualityComponentIsKnown(t *testing.T) {
	src := header + `
	l.Warn(ctx, "quality", "quality.drift.detected")
	l.Info(ctx, "quality", "quality.drift.cleared")
	l.Warn(ctx, "qualty", "quality.drift.detected")
}
`
	diags := runOn(t, src)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, `"qualty"`) {
		t.Fatalf("diagnostics = %v, want only the misspelled component", diags)
	}
}

// TestUnknownComponentIsFlagged pins the component vocabulary: a literal
// component outside the known layer set is a typo waiting to fork the
// forensics timeline.
func TestUnknownComponentIsFlagged(t *testing.T) {
	src := header + `
	l.Info(ctx, "flete", "fleet.start")
	l.Log(ctx, lvl, "serv", "serve.close")
	l.LogDevice(ctx, lvl, "device", "device.ready", "csd-000")
	l.Info(ctx, componentVar, "fleet.start")
}

var componentVar = "fleet"
`
	diags := runOn(t, src)
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want 2 unknown components", diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "not a known emitting layer") {
			t.Fatalf("unexpected message: %s", d.Message)
		}
	}
}
