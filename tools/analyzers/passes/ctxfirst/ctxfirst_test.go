package ctxfirst

import (
	"strings"
	"testing"

	"github.com/kfrida1/csdinf/tools/analyzers/analysis"
)

func runOn(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	pkg, err := analysis.PackageFromSource("internal/demo", map[string]string{"a.go": src})
	if err != nil {
		t.Fatal(err)
	}
	return analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{Analyzer})
}

func TestCtxMustBeFirst(t *testing.T) {
	src := `package demo

import "context"

func good(ctx context.Context, n int)  {}
func bad(n int, ctx context.Context)   {}
func none(n int)                       {}
func method() { _ = func(id string, ctx context.Context) {} }
`
	diags := runOn(t, src)
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want 2 (bad, literal)", diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "first parameter") {
			t.Fatalf("unexpected message: %s", d.Message)
		}
	}
}

func TestNoFreshContextInCtxFunctions(t *testing.T) {
	src := `package demo

import "context"

func process(ctx context.Context) {
	use(context.Background())
	use(context.TODO())
}

// startup has no ctx parameter: minting a root context is its job.
func startup() { use(context.Background()) }

func use(ctx context.Context) {}
`
	diags := runOn(t, src)
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want 2 (Background, TODO in process)", diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "thread the parameter") {
			t.Fatalf("unexpected message: %s", d.Message)
		}
	}
}

// TestNestedLiteralOwnsItsScope pins that a ctx-less closure inside a
// ctx-bearing function may mint its own root context (e.g. a detached
// background worker), while a ctx-bearing closure may not.
func TestNestedLiteralOwnsItsScope(t *testing.T) {
	src := `package demo

import "context"

func outer(ctx context.Context) {
	go func() { use(context.Background()) }()
	cb := func(ctx context.Context) { use(context.TODO()) }
	_ = cb
}

func use(ctx context.Context) {}
`
	diags := runOn(t, src)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "TODO") {
		t.Fatalf("diagnostics = %v, want only the ctx-bearing closure's TODO", diags)
	}
}

func TestImportRenameAndAllow(t *testing.T) {
	src := `package demo

import stdctx "context"

func handle(ctx stdctx.Context) {
	use(stdctx.Background()) //csdlint:allow ctxfirst detached audit span
	use(stdctx.Background())
}

func use(ctx stdctx.Context) {}
`
	diags := runOn(t, src)
	if len(diags) != 1 || diags[0].Pos.Line != 7 {
		t.Fatalf("diagnostics = %v, want only line 7", diags)
	}
}
