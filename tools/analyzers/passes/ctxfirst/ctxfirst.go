// Package ctxfirst enforces the repository's context conventions:
//
//  1. a context.Context parameter must be the first parameter, and
//  2. a function that already receives a ctx must not mint a fresh
//     context.Background()/context.TODO() — that drops the caller's trace
//     job ID and cancellation, which the event log and forensics rely on.
//
// Both checks are syntactic: a parameter whose type is <contextpkg>.Context
// (resolved through import renames) counts as a context parameter.
package ctxfirst

import (
	"go/ast"

	"github.com/kfrida1/csdinf/tools/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context must be the first parameter and must be threaded, not re-minted",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Pkg.Files {
		ctxPkg := f.ImportName("context")
		if ctxPkg == "" {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			var name string
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, body, name = fn.Type, fn.Body, fn.Name.Name
			case *ast.FuncLit:
				ftype, body, name = fn.Type, fn.Body, "function literal"
			default:
				return true
			}
			idx := ctxParamIndex(ftype, ctxPkg)
			if idx > 0 {
				pass.Reportf(f, ftype.Params.List[idx].Pos(),
					"%s: context.Context must be the first parameter", name)
			}
			if idx >= 0 && body != nil {
				flagFreshContexts(pass, f, body, ctxPkg, name)
			}
			return true
		})
	}
}

// ctxParamIndex returns the index (counting expanded names) of the first
// context.Context parameter, or -1.
func ctxParamIndex(ftype *ast.FuncType, ctxPkg string) int {
	if ftype.Params == nil {
		return -1
	}
	idx := 0
	for _, field := range ftype.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtxType(field.Type, ctxPkg) {
			return idx
		}
		idx += n
	}
	return -1
}

func isCtxType(expr ast.Expr, ctxPkg string) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	return ok && ident.Name == ctxPkg
}

func flagFreshContexts(pass *analysis.Pass, f *analysis.File, body *ast.BlockStmt, ctxPkg, name string) {
	ast.Inspect(body, func(n ast.Node) bool {
		// A nested function literal gets its own visit from run; whether a
		// Background inside it is legal depends on its own signature.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok || ident.Name != ctxPkg {
			return true
		}
		pass.Reportf(f, call.Pos(),
			"%s receives a context.Context but mints %s.%s(); thread the parameter instead",
			name, ctxPkg, sel.Sel.Name)
		return true
	})
}
