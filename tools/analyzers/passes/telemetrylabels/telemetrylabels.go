// Package telemetrylabels guards metric label cardinality.
//
// Every telemetry.L(key, value) label becomes part of a metric series key;
// an unbounded value (a PID, a path, an error string) explodes series
// cardinality in the registry. The pass requires the key to be a string
// literal or named constant, and permits non-constant values only for keys
// on a known-bounded allowlist (values drawn from small fixed sets such as
// device indices or verdict names).
package telemetrylabels

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"github.com/kfrida1/csdinf/tools/analyzers/analysis"
)

// telemetryPath matches the import path suffix of the root module's
// telemetry package, so the pass keeps working if the module is renamed.
const telemetryPath = "/internal/telemetry"

// boundedKeys are label keys whose value sets are known small: dynamic
// values are acceptable for these. Everything else must use a literal or
// named-constant value.
var boundedKeys = map[string]bool{
	"device": true, "verdict": true, "level": true, "platform": true,
	"kernel": true, "experiment": true, "outcome": true,
	// "stage" values come from the prof.Stage enum (queue, encode,
	// transfer, compute, verdict, observe).
	"stage": true,
	// "family" values pass through quality.SanitizeFamily, which bounds
	// them to the sandbox catalog vocabulary plus "benign"/"unknown"/
	// "other".
	"family": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "telemetrylabels",
	Doc:  "telemetry label keys must be constant; dynamic values only for bounded keys",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Pkg.Files {
		telName := importNameBySuffix(f, telemetryPath)
		if telName == "" {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "L" {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok || ident.Name != telName || len(call.Args) != 2 {
				return true
			}
			checkLabel(pass, f, call)
			return true
		})
	}
}

func importNameBySuffix(f *analysis.File, suffix string) string {
	for name, path := range f.Imports {
		if strings.HasSuffix(path, suffix) {
			return name
		}
	}
	return ""
}

func checkLabel(pass *analysis.Pass, f *analysis.File, call *ast.CallExpr) {
	key, value := call.Args[0], call.Args[1]
	lit, keyIsLiteral := key.(*ast.BasicLit)
	if !keyIsLiteral {
		// A bare identifier is assumed to be a named constant; anything
		// computed is out.
		if _, ok := key.(*ast.Ident); !ok {
			pass.Reportf(f, key.Pos(), "telemetry label key must be a string literal or named constant")
		}
		return
	}
	if lit.Kind != token.STRING {
		pass.Reportf(f, key.Pos(), "telemetry label key must be a string")
		return
	}
	keyVal, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if isConstantish(value) || boundedKeys[keyVal] {
		return
	}
	pass.Reportf(f, value.Pos(),
		"dynamic value for unbounded telemetry label key %q risks series-cardinality blowup; use a bounded key or a constant value (//csdlint:allow telemetrylabels <reason> if the value set is provably small)",
		keyVal)
}

// isConstantish reports whether expr is statically a small fixed value: a
// literal, a bare identifier (assumed const), or a selected constant like
// pkg.Name.
func isConstantish(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		_, ok := e.X.(*ast.Ident)
		return ok
	}
	return false
}
