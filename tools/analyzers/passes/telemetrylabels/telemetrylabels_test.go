package telemetrylabels

import (
	"strings"
	"testing"

	"github.com/kfrida1/csdinf/tools/analyzers/analysis"
)

func runOn(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	pkg, err := analysis.PackageFromSource("internal/demo", map[string]string{"a.go": src})
	if err != nil {
		t.Fatal(err)
	}
	return analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{Analyzer})
}

const header = `package demo

import (
	"strconv"

	"github.com/kfrida1/csdinf/internal/telemetry"
)

func label(i int, path string) {
`

func TestBoundedKeysAllowDynamicValues(t *testing.T) {
	src := header + `
	_ = telemetry.L("device", strconv.Itoa(i))
	_ = telemetry.L("verdict", verdictName(i))
	_ = telemetry.L("stage", verdictName(i))
}

func verdictName(i int) string { return "benign" }
`
	if diags := runOn(t, src); len(diags) != 0 {
		t.Fatalf("bounded keys flagged: %v", diags)
	}
}

// TestFamilyKeyIsBounded pins the vocabulary growth from the quality
// scorecard: "family" values pass through SanitizeFamily and stay bounded,
// so a dynamic family value is legitimate.
func TestFamilyKeyIsBounded(t *testing.T) {
	src := header + `
	_ = telemetry.L("family", familyName(i))
}

func familyName(i int) string { return "lockbit" }
`
	if diags := runOn(t, src); len(diags) != 0 {
		t.Fatalf("family key flagged: %v", diags)
	}
}

func TestUnboundedKeyRejectsDynamicValue(t *testing.T) {
	src := header + `
	_ = telemetry.L("path", path)
	_ = telemetry.L("pid", strconv.Itoa(i))
	_ = telemetry.L("stage", "preprocess")
}
`
	diags := runOn(t, src)
	// "path" passes: a bare identifier value is assumed constant-ish; only
	// computed values are flagged. strconv.Itoa(i) on "pid" is the blowup.
	if len(diags) != 1 || !strings.Contains(diags[0].Message, `"pid"`) {
		t.Fatalf("diagnostics = %v, want one finding on key \"pid\"", diags)
	}
}

func TestComputedKeyIsRejected(t *testing.T) {
	src := header + `
	_ = telemetry.L("dev"+strconv.Itoa(i), "x")
}
`
	diags := runOn(t, src)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "literal or named constant") {
		t.Fatalf("diagnostics = %v, want computed-key finding", diags)
	}
}

func TestConstKeyAndAllow(t *testing.T) {
	src := header + `
	_ = telemetry.L(keyKernel, kernelName(i))
	_ = telemetry.L("query", path) //csdlint:allow telemetrylabels value set capped by config
}

const keyKernel = "kernel"

func kernelName(i int) string { return "gates" }
`
	if diags := runOn(t, src); len(diags) != 0 {
		t.Fatalf("const key or allow not honored: %v", diags)
	}
}

func TestOtherPackagesNamedTelemetryIgnored(t *testing.T) {
	src := `package demo

import "example.com/other/telemetry"

func f(s string) { _ = telemetry.L(s, s) }
`
	if diags := runOn(t, src); len(diags) != 0 {
		t.Fatalf("unrelated telemetry package flagged: %v", diags)
	}
}
