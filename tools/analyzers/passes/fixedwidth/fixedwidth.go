// Package fixedwidth flags raw +, -, * arithmetic on fixed.Value operands
// outside internal/fixed.
//
// A fixed.Value is a scaled int64; the semantics of adding or multiplying two
// of them depend on the scales they carry, and a raw Go operator silently
// produces a wrong-scale result (x*y carries scale S², x*k re-scales by k) or
// a silent wrap. All arithmetic must go through the Arith methods — Add, Mul,
// Dot, Rescale, the checked variants — which either rescale correctly or make
// the wrap observable. internal/fixed itself is exempt: it is the one place
// the raw representation is supposed to be manipulated.
//
// The pass is syntactic (see the analysis package doc): an operand counts as
// a fixed.Value when it is
//
//   - an identifier declared with type fixed.Value (or a slice/array of it)
//     in the enclosing function's parameters, results, or declarations;
//   - an index into such a slice, or a loop variable ranging over one;
//   - a selector whose field name is declared as fixed.Value in any struct
//     of the package (a syntactic pass cannot resolve receiver types, so
//     field names are matched package-wide);
//   - the result of calling a producer method (Add, Mul, Dot, FromFloat, ...)
//     on an arith-like receiver — an identifier or field of type fixed.Arith
//     or activation.Fixed, or the result of fixed.New/MustNew/fixed.Default;
//   - assigned from any expression of the above forms.
//
// Comparisons (<, ==, >=) and operations on plain ints stay legal — scales
// cancel in comparisons, and loop arithmetic is not value arithmetic.
// Suppress a deliberate raw manipulation with
// //csdlint:allow fixedwidth <reason>.
package fixedwidth

import (
	"go/ast"
	"go/token"
	"strings"

	"github.com/kfrida1/csdinf/tools/analyzers/analysis"
)

const fixedPath = "github.com/kfrida1/csdinf/internal/fixed"

// producers are the Arith / activation.Fixed methods that return fixed.Value
// (or accept and return it): calling one on an arith-like receiver yields a
// tracked operand.
var producers = map[string]bool{
	"Add": true, "Sub": true, "Mul": true, "MulWide": true, "Div": true,
	"Neg": true, "Abs": true, "Dot": true, "One": true,
	"FromFloat": true, "FromInt": true, "FromRaw": true, "Rescale": true,
	"AddChecked": true, "SubChecked": true, "MulChecked": true,
	"MulRaw": true, "DotChecked": true, "DotRaw": true,
	"QuantizeSlice": true,
	"Softsign":      true, "Sigmoid": true, "Tanh": true, "Apply": true,
}

// arithMakers are the internal/fixed package-level names whose results are
// arith-like.
var arithMakers = map[string]bool{"New": true, "MustNew": true, "Default": true}

var Analyzer = &analysis.Analyzer{
	Name: "fixedwidth",
	Doc:  "forbid raw +, -, * on fixed.Value operands outside internal/fixed",
	Run:  run,
}

var flaggedOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true,
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
}

func run(pass *analysis.Pass) {
	if pass.Pkg.Dir == "internal/fixed" || strings.HasPrefix(pass.Pkg.Dir, "internal/fixed/") {
		return
	}
	// Package-wide field-name sets: struct fields typed fixed.Value (value
	// operands) and fields typed fixed.Arith / activation.Fixed (producer
	// receivers).
	valueFields := map[string]bool{}
	arithFields := map[string]bool{}
	for _, f := range pass.Pkg.Files {
		fixedName := f.ImportName(fixedPath)
		if fixedName == "" {
			continue
		}
		collectFields(f, fixedName, valueFields, arithFields)
	}
	for _, f := range pass.Pkg.Files {
		fixedName := f.ImportName(fixedPath)
		if fixedName == "" {
			continue
		}
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c := &checker{
				pass: pass, file: f, fixedName: fixedName,
				valueFields: valueFields, arithFields: arithFields,
				values: map[string]bool{}, ariths: map[string]bool{},
			}
			c.checkFunc(fn)
		}
	}
}

// collectFields records struct field names by their declared type.
func collectFields(f *analysis.File, fixedName string, valueFields, arithFields map[string]bool) {
	ast.Inspect(f.AST, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			var dst map[string]bool
			switch {
			case isValueType(field.Type, fixedName):
				dst = valueFields
			case isArithType(field.Type, fixedName):
				dst = arithFields
			default:
				continue
			}
			for _, name := range field.Names {
				dst[name.Name] = true
			}
		}
		return true
	})
}

// isValueType reports whether t denotes fixed.Value, possibly behind slices,
// arrays, or pointers.
func isValueType(t ast.Expr, fixedName string) bool {
	switch t := t.(type) {
	case *ast.ArrayType:
		return isValueType(t.Elt, fixedName)
	case *ast.StarExpr:
		return isValueType(t.X, fixedName)
	case *ast.SelectorExpr:
		id, ok := t.X.(*ast.Ident)
		return ok && id.Name == fixedName && t.Sel.Name == "Value"
	}
	return false
}

// isArithType reports whether t denotes fixed.Arith or activation.Fixed (the
// two method sets that produce fixed.Value results).
func isArithType(t ast.Expr, fixedName string) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return (id.Name == fixedName && sel.Sel.Name == "Arith") ||
		(id.Name == "activation" && sel.Sel.Name == "Fixed")
}

// checker walks one function body, growing the tracked-identifier sets in
// statement order and reporting raw arithmetic on tracked operands.
type checker struct {
	pass        *analysis.Pass
	file        *analysis.File
	fixedName   string
	valueFields map[string]bool
	arithFields map[string]bool
	values      map[string]bool // local identifiers holding fixed.Value (or slices)
	ariths      map[string]bool // local identifiers holding fixed.Arith / activation.Fixed
}

func (c *checker) checkFunc(fn *ast.FuncDecl) {
	c.addFieldList(fn.Type.Params)
	c.addFieldList(fn.Type.Results)
	if fn.Recv != nil {
		c.addFieldList(fn.Recv)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || vs.Type == nil {
						continue
					}
					c.trackNames(vs.Names, vs.Type)
				}
			}
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.RangeStmt:
			// Ranging over a tracked slice yields tracked elements.
			if c.isValue(n.X) {
				if id, ok := n.Value.(*ast.Ident); ok {
					c.values[id.Name] = true
				}
			}
		case *ast.BinaryExpr:
			if flaggedOps[n.Op] && (c.isValue(n.X) || c.isValue(n.Y)) {
				c.pass.Reportf(c.file, n.OpPos,
					"raw %s on fixed.Value operands; use the fixed.Arith methods (or the checked variants), or annotate //csdlint:allow fixedwidth <reason>",
					n.Op)
			}
		case *ast.FuncLit:
			c.addFieldList(n.Type.Params)
			c.addFieldList(n.Type.Results)
		}
		return true
	})
}

func (c *checker) addFieldList(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		c.trackNames(field.Names, field.Type)
	}
}

func (c *checker) trackNames(names []*ast.Ident, t ast.Expr) {
	var dst map[string]bool
	switch {
	case isValueType(t, c.fixedName):
		dst = c.values
	case isArithType(t, c.fixedName):
		dst = c.ariths
	default:
		return
	}
	for _, name := range names {
		dst[name.Name] = true
	}
}

// assign grows the tracked sets from assignments and reports compound
// arithmetic assignments (+=, -=, *=) on tracked operands.
func (c *checker) assign(n *ast.AssignStmt) {
	if flaggedOps[n.Tok] {
		for i := range n.Lhs {
			var rhs ast.Expr
			if i < len(n.Rhs) {
				rhs = n.Rhs[i]
			}
			if c.isValue(n.Lhs[i]) || (rhs != nil && c.isValue(rhs)) {
				c.pass.Reportf(c.file, n.TokPos,
					"raw %s on fixed.Value operands; use the fixed.Arith methods (or the checked variants), or annotate //csdlint:allow fixedwidth <reason>",
					n.Tok)
			}
		}
		return
	}
	mark := func(lhs ast.Expr, value, arith bool) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if value {
			c.values[id.Name] = true
		}
		if arith {
			c.ariths[id.Name] = true
		}
	}
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// v, err := a.Div(x, y) / arith, err := fixed.New(s): the first
		// result carries the value.
		mark(n.Lhs[0], c.isValue(n.Rhs[0]), c.isArith(n.Rhs[0]))
		return
	}
	for i := range n.Lhs {
		if i < len(n.Rhs) {
			mark(n.Lhs[i], c.isValue(n.Rhs[i]), c.isArith(n.Rhs[i]))
		}
	}
}

// isValue reports whether e is a tracked fixed.Value operand.
func (c *checker) isValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return c.values[e.Name]
	case *ast.ParenExpr:
		return c.isValue(e.X)
	case *ast.UnaryExpr:
		return c.isValue(e.X)
	case *ast.IndexExpr:
		return c.isValue(e.X)
	case *ast.SelectorExpr:
		// p.qFCB, p.hQ — a field name declared fixed.Value somewhere in the
		// package. The receiver is deliberately ignored (no type info).
		return c.valueFields[e.Sel.Name]
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok || !producers[sel.Sel.Name] {
			return false
		}
		return c.isArith(sel.X)
	case *ast.BinaryExpr:
		// A raw expression over tracked operands is itself a (wrong or
		// wrapped) fixed.Value: the taint propagates through assignments.
		return c.isValue(e.X) || c.isValue(e.Y)
	case *ast.TypeAssertExpr:
		return isValueType(e.Type, c.fixedName)
	}
	return false
}

// isArith reports whether e is an arith-like receiver: a tracked identifier,
// a field of type fixed.Arith / activation.Fixed, or a fixed.New /
// fixed.MustNew / fixed.Default expression.
func (c *checker) isArith(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return c.ariths[e.Name]
	case *ast.ParenExpr:
		return c.isArith(e.X)
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok && id.Name == c.fixedName && arithMakers[e.Sel.Name] {
			return true
		}
		return c.arithFields[e.Sel.Name]
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == c.fixedName && arithMakers[sel.Sel.Name] {
			return true
		}
		// activation.NewFixed(a) is arith-like too.
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "activation" && sel.Sel.Name == "NewFixed" {
			return true
		}
	}
	return false
}
