package fixedwidth

import (
	"strings"
	"testing"

	"github.com/kfrida1/csdinf/tools/analyzers/analysis"
)

func runOn(t *testing.T, dir, src string) []analysis.Diagnostic {
	t.Helper()
	pkg, err := analysis.PackageFromSource(dir, map[string]string{"a.go": src})
	if err != nil {
		t.Fatal(err)
	}
	return analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{Analyzer})
}

func TestFlagsRawOpsOnDeclaredValues(t *testing.T) {
	src := `package kernels

import "github.com/kfrida1/csdinf/internal/fixed"

func bad(x, y fixed.Value) fixed.Value {
	sum := x + y
	diff := x - y
	prod := x * y
	sum += diff
	prod *= x
	return sum
}

func legal(x, y fixed.Value, n int) bool {
	m := n + 1      // plain int arithmetic stays legal
	_ = m
	return x >= y   // comparisons stay legal: scales cancel
}
`
	diags := runOn(t, "internal/kernels", src)
	if len(diags) != 5 {
		t.Fatalf("diagnostics = %d, want 5 (+, -, *, +=, *=): %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "fixed.Arith methods") {
			t.Fatalf("unexpected message: %s", d.Message)
		}
	}
}

func TestTracksSlicesIndexingAndRange(t *testing.T) {
	src := `package kernels

import "github.com/kfrida1/csdinf/internal/fixed"

func bad(xs []fixed.Value) fixed.Value {
	var acc fixed.Value
	for _, v := range xs {
		acc = acc + v
	}
	return acc + xs[0]
}
`
	if diags := runOn(t, "internal/kernels", src); len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want 2 (range element, index)", diags)
	}
}

func TestTracksStructFieldsAcrossPackage(t *testing.T) {
	src := `package kernels

import "github.com/kfrida1/csdinf/internal/fixed"

type pipe struct {
	qFCB fixed.Value
	hQ   []fixed.Value
	n    int
}

func (p *pipe) bad() fixed.Value {
	return p.qFCB + p.hQ[0]
}

func (p *pipe) legal() int {
	return p.n + 1
}
`
	if diags := runOn(t, "internal/kernels", src); len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want 1 (field +)", diags)
	}
}

func TestTracksProducerResultsAndAssignments(t *testing.T) {
	src := `package kernels

import "github.com/kfrida1/csdinf/internal/fixed"

type pipe struct{ arith fixed.Arith }

func (p *pipe) bad(x, y fixed.Value) fixed.Value {
	pre := p.arith.Dot(nil, nil)
	pre2 := pre * 2                    // assigned from a producer: tracked
	one := p.arith.One() - 1           // producer result used raw
	a := fixed.MustNew(100)
	v, err := a.Div(x, y)              // multi-assign: first result tracked
	_ = err
	return pre2 + one + v
}
`
	diags := runOn(t, "internal/kernels", src)
	if len(diags) != 4 {
		t.Fatalf("diagnostics = %d, want 4 (pre*2, One()-1, v chain of two +): %v", len(diags), diags)
	}
}

func TestStdlibCallsAreNotProducers(t *testing.T) {
	// math.Abs is in the producer name set ("Abs") but math is not an
	// arith-like receiver: float code in packages that also import fixed
	// must stay legal.
	src := `package activation

import (
	"math"

	"github.com/kfrida1/csdinf/internal/fixed"
)

var _ fixed.Value

func SoftsignF(x float64) float64 {
	return x / (math.Abs(x) + 1)
}
`
	if diags := runOn(t, "internal/activation", src); len(diags) != 0 {
		t.Fatalf("float stdlib arithmetic flagged: %v", diags)
	}
}

func TestInternalFixedIsExempt(t *testing.T) {
	src := `package fixed

import "github.com/kfrida1/csdinf/internal/fixed"

func raw(x, y fixed.Value) fixed.Value { return x + y }
`
	if diags := runOn(t, "internal/fixed", src); len(diags) != 0 {
		t.Fatalf("internal/fixed flagged: %v", diags)
	}
}

func TestFilesWithoutFixedImportAreSkipped(t *testing.T) {
	src := `package detect

type Value int64

func add(x, y Value) Value { return x + y }
`
	if diags := runOn(t, "internal/detect", src); len(diags) != 0 {
		t.Fatalf("unrelated Value type flagged: %v", diags)
	}
}

func TestAllowAnnotationSuppresses(t *testing.T) {
	src := `package absint

import "github.com/kfrida1/csdinf/internal/fixed"

func bounds(one fixed.Value) fixed.Value {
	hi := 5*one - 1 //csdlint:allow fixedwidth exact segment bound, cannot wrap
	return hi
}

func unannotated(one fixed.Value) fixed.Value {
	return 5*one - 1
}
`
	diags := runOn(t, "internal/absint", src)
	// The unannotated function has two findings (* and -); the annotated
	// line has none.
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want 2 from the unannotated function", diags)
	}
	for _, d := range diags {
		if d.Pos.Line != 11 {
			t.Fatalf("flagged line %d, want 11 only", d.Pos.Line)
		}
	}
}
