// Package simclock flags wall-clock use inside simulated-clock packages.
//
// The device stack (hls, fpga, csd, xrt, pcie, ssd, kernels) models time as
// counted cycles converted through the part's clock frequency; a stray
// time.Now or time.Sleep there silently couples simulated latency to host
// load and makes every cycle-accounting test flaky. Host-side packages
// (serve, detect, telemetry, ...) are free to use real time.
package simclock

import (
	"go/ast"
	"strings"

	"github.com/kfrida1/csdinf/tools/analyzers/analysis"
)

// simDirs are the simulated-clock packages, by root-relative directory.
// Subdirectories inherit the restriction.
var simDirs = []string{
	"internal/hls",
	"internal/fpga",
	"internal/csd",
	"internal/xrt",
	"internal/pcie",
	"internal/ssd",
	"internal/kernels",
}

// banned are the time-package identifiers that read or schedule against the
// host clock. Pure value types (time.Duration, time.Time as data) stay
// legal: only these accessors are flagged, whether called or referenced as
// function values.
var banned = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "NewTimer": true, "NewTicker": true,
	"Tick": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "simclock",
	Doc:  "forbid wall-clock time in simulated-clock device packages",
	Run:  run,
}

func inSimDir(dir string) bool {
	for _, d := range simDirs {
		if dir == d || strings.HasPrefix(dir, d+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) {
	if !inSimDir(pass.Pkg.Dir) {
		return
	}
	for _, f := range pass.Pkg.Files {
		timeName := f.ImportName("time")
		if timeName == "" {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok || ident.Name != timeName || !banned[sel.Sel.Name] {
				return true
			}
			pass.Reportf(f, sel.Pos(),
				"%s.%s reads the host clock inside simulated-clock package %s; derive time from cycle counts (or annotate //csdlint:allow simclock <reason>)",
				timeName, sel.Sel.Name, pass.Pkg.Dir)
			return true
		})
	}
}
