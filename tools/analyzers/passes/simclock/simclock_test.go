package simclock

import (
	"strings"
	"testing"

	"github.com/kfrida1/csdinf/tools/analyzers/analysis"
)

func runOn(t *testing.T, dir, src string) []analysis.Diagnostic {
	t.Helper()
	pkg, err := analysis.PackageFromSource(dir, map[string]string{"a.go": src})
	if err != nil {
		t.Fatal(err)
	}
	return analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{Analyzer})
}

func TestFlagsWallClockInSimPackages(t *testing.T) {
	src := `package csd

import "time"

func bad() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}

func legalValueTypes(d time.Duration) time.Time { var t time.Time; _ = d; return t }
`
	diags := runOn(t, "internal/csd", src)
	if len(diags) != 3 {
		t.Fatalf("diagnostics = %d, want 3 (Now, Sleep, Since): %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "host clock") {
			t.Fatalf("unexpected message: %s", d.Message)
		}
	}
}

func TestImportRenameIsTracked(t *testing.T) {
	src := `package hls

import wall "time"

var t = wall.Now()
`
	if diags := runOn(t, "internal/hls", src); len(diags) != 1 {
		t.Fatalf("renamed import not tracked: %v", diags)
	}
}

func TestHostPackagesAreFree(t *testing.T) {
	src := `package serve

import "time"

var t = time.Now()
`
	if diags := runOn(t, "internal/serve", src); len(diags) != 0 {
		t.Fatalf("host package flagged: %v", diags)
	}
}

func TestSubdirectoriesInherit(t *testing.T) {
	src := `package sub

import "time"

var t = time.Now()
`
	if diags := runOn(t, "internal/fpga/sub", src); len(diags) != 1 {
		t.Fatalf("subdirectory not covered: %v", diags)
	}
}

func TestAllowAnnotationSuppresses(t *testing.T) {
	src := `package xrt

import "time"

var t = time.Now() //csdlint:allow simclock seed for the jitter model only

//csdlint:allow simclock previous-line form
var u = time.Now()

var v = time.Now()
`
	diags := runOn(t, "internal/xrt", src)
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want only the unannotated use", diags)
	}
	if diags[0].Pos.Line != 10 {
		t.Fatalf("flagged line %d, want 10", diags[0].Pos.Line)
	}
}

func TestFunctionValueReferenceIsFlagged(t *testing.T) {
	src := `package pcie

import "time"

var clock = time.Now
`
	if diags := runOn(t, "internal/pcie", src); len(diags) != 1 {
		t.Fatalf("func-value reference not flagged: %v", diags)
	}
}
