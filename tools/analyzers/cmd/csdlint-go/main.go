// Command csdlint-go runs the repository's custom Go-source analyzers —
// simclock, ctxfirst, telemetrylabels, eventname, fixedwidth — over a
// source tree, in
// the style of an x/tools multichecker but with no dependencies beyond the
// standard library.
//
//	csdlint-go -root ../..           # from tools/analyzers, lint the repo
//	csdlint-go -only simclock,eventname
//
// Output is one "file:line:col: analyzer: message" line per finding; the
// exit status is 1 when anything was found. Suppress a finding in place
// with `//csdlint:allow <analyzer> <reason>`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/kfrida1/csdinf/tools/analyzers/analysis"
	"github.com/kfrida1/csdinf/tools/analyzers/passes/ctxfirst"
	"github.com/kfrida1/csdinf/tools/analyzers/passes/eventname"
	"github.com/kfrida1/csdinf/tools/analyzers/passes/fixedwidth"
	"github.com/kfrida1/csdinf/tools/analyzers/passes/simclock"
	"github.com/kfrida1/csdinf/tools/analyzers/passes/telemetrylabels"
)

// All is the full registry, in the order findings are attributed.
var All = []*analysis.Analyzer{
	simclock.Analyzer,
	ctxfirst.Analyzer,
	telemetrylabels.Analyzer,
	eventname.Analyzer,
	fixedwidth.Analyzer,
}

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "csdlint-go:", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("csdlint-go", flag.ContinueOnError)
	root := fs.String("root", ".", "root of the source tree to analyze")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *list {
		for _, a := range All {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}

	selected := All
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range All {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return 2, fmt.Errorf("unknown analyzer %q", name)
			}
			selected = append(selected, a)
		}
	}

	pkgs, err := analysis.Load(*root)
	if err != nil {
		return 2, err
	}
	diags := analysis.Run(pkgs, selected)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Printf("csdlint-go: %d finding(s)\n", len(diags))
		return 1, nil
	}
	return 0, nil
}
