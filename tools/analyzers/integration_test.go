package analyzers

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/kfrida1/csdinf/tools/analyzers/analysis"
	"github.com/kfrida1/csdinf/tools/analyzers/passes/ctxfirst"
	"github.com/kfrida1/csdinf/tools/analyzers/passes/eventname"
	"github.com/kfrida1/csdinf/tools/analyzers/passes/fixedwidth"
	"github.com/kfrida1/csdinf/tools/analyzers/passes/simclock"
	"github.com/kfrida1/csdinf/tools/analyzers/passes/telemetrylabels"
)

// TestRepositoryIsClean runs every analyzer over the actual repository —
// the same gate `make lint` and CI apply. A failure here means a real
// violation landed (fix it or annotate it with a reasoned
// //csdlint:allow), never that the fixture suite is wrong.
func TestRepositoryIsClean(t *testing.T) {
	root := filepath.Join("..", "..")
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("repository root not found: %v", err)
	}
	pkgs, err := analysis.Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("only %d packages loaded from the repository; Load is broken", len(pkgs))
	}
	diags := analysis.Run(pkgs, []*analysis.Analyzer{
		simclock.Analyzer,
		ctxfirst.Analyzer,
		telemetrylabels.Analyzer,
		eventname.Analyzer,
		fixedwidth.Analyzer,
	})
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
