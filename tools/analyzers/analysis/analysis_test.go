package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, root, rel, src string) {
	t.Helper()
	path := filepath.Join(root, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSkipsTestsFixturesAndTools(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/a/a.go", "package a\n")
	write(t, root, "internal/a/a_test.go", "package a\n")
	write(t, root, "internal/a/testdata/fixture.go", "package broken !!!\n")
	write(t, root, "tools/analyzers/x.go", "package x\n")
	write(t, root, "main.go", "package main\n")

	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	total := 0
	for _, p := range pkgs {
		dirs = append(dirs, p.Dir)
		total += len(p.Files)
	}
	if len(pkgs) != 2 || total != 2 {
		t.Fatalf("loaded %v (%d files), want [., internal/a] with 2 files", dirs, total)
	}
	if pkgs[0].Dir != "." || pkgs[1].Dir != "internal/a" {
		t.Fatalf("dirs = %v", dirs)
	}
}

func TestImportsTrackRenames(t *testing.T) {
	pkg, err := PackageFromSource("internal/a", map[string]string{"a.go": `package a

import (
	"time"
	wall "time"
	_ "embed"
	tel "example.com/internal/telemetry"
)

var _ = time.Time{}
var _ = wall.Time{}
var _ = tel.X
`})
	if err != nil {
		t.Fatal(err)
	}
	f := pkg.Files[0]
	if f.Imports["time"] != "time" || f.Imports["wall"] != "time" {
		t.Fatalf("imports = %v", f.Imports)
	}
	if f.Imports["tel"] != "example.com/internal/telemetry" {
		t.Fatalf("renamed third-party import lost: %v", f.Imports)
	}
	if _, ok := f.Imports["embed"]; ok {
		t.Fatalf("blank import should be dropped: %v", f.Imports)
	}
	if f.ImportName("time") == "" {
		t.Fatal("ImportName(time) empty")
	}
}

func TestRunOrdersDiagnostics(t *testing.T) {
	pkg, err := PackageFromSource("internal/a", map[string]string{
		"a.go": "package a\n\nvar A = 1\n",
		"b.go": "package a\n\nvar B = 2\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	flagEveryValueSpec := &Analyzer{Name: "every", Doc: "test", Run: func(p *Pass) {
		// Visit files in reverse to prove Run sorts output by position.
		for i := len(p.Pkg.Files) - 1; i >= 0; i-- {
			f := p.Pkg.Files[i]
			for _, decl := range f.AST.Decls {
				p.Reportf(f, decl.Pos(), "decl in %s", f.Path)
			}
		}
	}}
	diags := Run([]*Package{pkg}, []*Analyzer{flagEveryValueSpec})
	if len(diags) != 2 {
		t.Fatalf("diags = %v", diags)
	}
	if diags[0].Pos.Filename != "internal/a/a.go" || diags[1].Pos.Filename != "internal/a/b.go" {
		t.Fatalf("not sorted: %v", diags)
	}
}

func TestAllowParsing(t *testing.T) {
	pkg, err := PackageFromSource("internal/a", map[string]string{"a.go": `package a

var A = 1 //csdlint:allow every trailing form

//csdlint:allow every preceding form
var B = 2

//csdlint:allow other different analyzer
var C = 3

//csdlint:allow all blanket
var D = 4
`})
	if err != nil {
		t.Fatal(err)
	}
	every := &Analyzer{Name: "every", Doc: "test", Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			for _, decl := range f.AST.Decls {
				if g, ok := decl.(*ast.GenDecl); ok {
					p.Reportf(f, g.Pos(), "var")
				}
			}
		}
	}}
	diags := Run([]*Package{pkg}, []*Analyzer{every})
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want only C's", diags)
	}
	if diags[0].Pos.Line != 9 {
		t.Fatalf("flagged line %d, want 9 (var C)", diags[0].Pos.Line)
	}
}
