// Package analysis is a deliberately small, dependency-free skeleton of the
// golang.org/x/tools/go/analysis API: just enough structure to write the
// repository's custom lint passes against the standard library's go/ast and
// go/parser. The build environment has no module proxy access, so vendoring
// x/tools is not an option; the subset here (Analyzer, Pass, Reportf,
// suppression comments) keeps the passes portable should that ever change.
//
// Passes are purely syntactic — there is no type checker. Each analyzer
// documents the heuristics it uses in place of type information, and every
// heuristic is pinned by a fixture test so a refactor that invalidates one
// fails loudly.
//
// A diagnostic can be suppressed at the call site with
//
//	//csdlint:allow <analyzer> <reason>
//
// on the same line as, or the line immediately above, the flagged node. The
// reason is mandatory by convention (reviewed, not enforced).
package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// An Analyzer is one named lint pass.
type Analyzer struct {
	Name string // short lowercase identifier used in output and allow comments
	Doc  string // one-line description
	Run  func(*Pass)
}

// A File is one parsed, non-test Go source file.
type File struct {
	Path    string // path as given to Load (root-relative)
	AST     *ast.File
	Imports map[string]string // local name -> import path, including renames
	allows  map[int][]string  // source line -> analyzer names allowed there
}

// ImportName returns the local name under which path is imported in f, or
// "" when f does not import it. Dot and blank imports return "".
func (f *File) ImportName(path string) string {
	for name, p := range f.Imports {
		if p == path {
			return name
		}
	}
	return ""
}

// A Package is the unit a Pass runs over: all non-test files of one
// directory.
type Package struct {
	Dir   string // slash-separated path relative to the load root, "." for the root
	Fset  *token.FileSet
	Files []*File
}

// A Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an allow comment for this analyzer
// covers the position's line.
func (p *Pass) Reportf(f *File, pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if names, ok := f.allows[position.Line]; ok && allowed(names, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

func allowed(names []string, analyzer string) bool {
	for _, n := range names {
		if n == analyzer || n == "all" {
			return true
		}
	}
	return false
}

// skipDirs are directory basenames never descended into: metadata, fixtures,
// build output, and this module itself (it is a separate module with its own
// gating and would otherwise be analyzed against the root's rules).
var skipDirs = map[string]bool{
	".git": true, ".github": true, "testdata": true, "tools": true,
	"vendor": true, "bench-results": true, "node_modules": true,
}

// Load parses every non-test .go file under root into per-directory
// packages, sorted by directory then file name for deterministic output.
func Load(root string) ([]*Package, error) {
	fset := token.NewFileSet()
	byDir := map[string]*Package{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && (skipDirs[d.Name()] || strings.HasPrefix(d.Name(), ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		file, err := parseFile(fset, rel, src)
		if err != nil {
			return err
		}
		dir := filepath.ToSlash(filepath.Dir(rel))
		pkg, ok := byDir[dir]
		if !ok {
			pkg = &Package{Dir: dir, Fset: fset}
			byDir[dir] = pkg
		}
		pkg.Files = append(pkg.Files, file)
		return nil
	})
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(byDir))
	for _, pkg := range byDir {
		sort.Slice(pkg.Files, func(i, j int) bool { return pkg.Files[i].Path < pkg.Files[j].Path })
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Dir < pkgs[j].Dir })
	return pkgs, nil
}

// PackageFromSource builds a package from in-memory sources, for fixture
// tests. Keys are file names; dir is the package's root-relative directory.
func PackageFromSource(dir string, sources map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	pkg := &Package{Dir: dir, Fset: fset}
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		file, err := parseFile(fset, dir+"/"+name, []byte(sources[name]))
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, file)
	}
	return pkg, nil
}

func parseFile(fset *token.FileSet, path string, src []byte) (*File, error) {
	astf, err := parser.ParseFile(fset, path, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	f := &File{Path: path, AST: astf, Imports: map[string]string{}, allows: map[int][]string{}}
	for _, imp := range astf.Imports {
		ipath, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := ipath
		if i := strings.LastIndex(ipath, "/"); i >= 0 {
			name = ipath[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "_" || name == "." {
				continue
			}
		}
		f.Imports[name] = ipath
	}
	for _, group := range astf.Comments {
		for _, c := range group.List {
			text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
			text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
			rest, ok := strings.CutPrefix(text, "csdlint:allow ")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			pos := fset.Position(c.Pos())
			// A trailing comment (code before it on the line) covers only
			// its own line; a standalone comment covers the next line.
			f.allows[pos.Line] = append(f.allows[pos.Line], fields[0])
			lineStart := pos.Offset - (pos.Column - 1)
			if lineStart >= 0 && strings.TrimSpace(string(src[lineStart:pos.Offset])) == "" {
				f.allows[pos.Line+1] = append(f.allows[pos.Line+1], fields[0])
			}
		}
	}
	return f, nil
}

// Run applies every analyzer to every package and returns the findings in
// position order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		di, dj := diags[i], diags[j]
		if di.Pos.Filename != dj.Pos.Filename {
			return di.Pos.Filename < dj.Pos.Filename
		}
		if di.Pos.Line != dj.Pos.Line {
			return di.Pos.Line < dj.Pos.Line
		}
		if di.Pos.Column != dj.Pos.Column {
			return di.Pos.Column < dj.Pos.Column
		}
		return di.Analyzer < dj.Analyzer
	})
	return diags
}
